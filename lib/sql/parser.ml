open Sql_ast

exception Parse_error of string * int

type state = { toks : (Lexer.token * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let pos_of st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise
    (Parse_error
       (Printf.sprintf "%s (found %s)" msg (Lexer.token_to_string (peek st)), pos_of st))

let eat st tok =
  if peek st = tok then advance st
  else fail st (Printf.sprintf "expected %s" (Lexer.token_to_string tok))

let eat_kw st kw =
  match peek st with
  | Lexer.KW k when String.equal k kw -> advance st
  | _ -> fail st (Printf.sprintf "expected %s" kw)

let ident st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | _ -> fail st "expected identifier"

let agg_func_of_kw = function
  | "COUNT" -> Some Aggregate.Count
  | "SUM" -> Some Aggregate.Sum
  | "AVG" -> Some Aggregate.Avg
  | "MIN" -> Some Aggregate.Min
  | "MAX" -> Some Aggregate.Max
  | _ -> None

(* ---- expressions ---- *)

let rec parse_expr st = parse_additive st

and parse_additive st =
  let lhs = parse_multiplicative st in
  match peek st with
  | Lexer.PLUS ->
    advance st;
    E_binop (Expr.Add, lhs, parse_additive st)
  | Lexer.MINUS ->
    advance st;
    E_binop (Expr.Sub, lhs, parse_additive st)
  | _ -> lhs

and parse_multiplicative st =
  let lhs = parse_primary st in
  match peek st with
  | Lexer.STAR ->
    advance st;
    E_binop (Expr.Mul, lhs, parse_multiplicative st)
  | Lexer.SLASH ->
    advance st;
    E_binop (Expr.Div, lhs, parse_multiplicative st)
  | _ -> lhs

and parse_primary st =
  match peek st with
  | Lexer.INT i ->
    advance st;
    E_int i
  | Lexer.MINUS ->
    advance st;
    (match peek st with
     | Lexer.INT i ->
       advance st;
       E_int (-i)
     | Lexer.FLOAT f ->
       advance st;
       E_float (-.f)
     | _ -> fail st "expected number after unary minus")
  | Lexer.FLOAT f ->
    advance st;
    E_float f
  | Lexer.STRING s ->
    advance st;
    E_string s
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    eat st Lexer.RPAREN;
    e
  | Lexer.IDENT q -> (
    advance st;
    match peek st with
    | Lexer.DOT ->
      advance st;
      E_col (Some q, ident st)
    | _ -> E_col (None, q))
  | _ -> fail st "expected expression"

(* ---- aggregates ---- *)

let parse_agg_call st kw =
  match agg_func_of_kw kw with
  | None -> fail st "expected aggregate function"
  | Some func ->
    advance st;
    eat st Lexer.LPAREN;
    if peek st = Lexer.STAR then begin
      advance st;
      eat st Lexer.RPAREN;
      if func <> Aggregate.Count then fail st "only COUNT accepts *";
      { afunc = Aggregate.Count_star; aarg = None }
    end
    else begin
      let arg = parse_expr st in
      eat st Lexer.RPAREN;
      { afunc = func; aarg = Some arg }
    end

(* ---- conditions ---- *)

let cmp_of_token = function
  | Lexer.EQ -> Some Expr.Eq
  | Lexer.NE -> Some Expr.Ne
  | Lexer.LT -> Some Expr.Lt
  | Lexer.LE -> Some Expr.Le
  | Lexer.GT -> Some Expr.Gt
  | Lexer.GE -> Some Expr.Ge
  | _ -> None

let rec parse_cond st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  match peek st with
  | Lexer.KW "OR" ->
    advance st;
    C_or (lhs, parse_or st)
  | _ -> lhs

and parse_and st =
  let lhs = parse_not st in
  match peek st with
  | Lexer.KW "AND" ->
    advance st;
    C_and (lhs, parse_and st)
  | _ -> lhs

and parse_not st =
  match peek st with
  | Lexer.KW "NOT" ->
    advance st;
    C_not (parse_not st)
  | _ -> parse_comparison st

and parse_operand st =
  match peek st with
  | Lexer.KW kw when agg_func_of_kw kw <> None -> O_agg (parse_agg_call st kw)
  | Lexer.LPAREN when is_subquery st -> (
    advance st;
    let sub = parse_select_body st in
    eat st Lexer.RPAREN;
    O_subquery sub)
  | _ -> O_expr (parse_expr st)

and is_subquery st =
  (* lookahead: '(' SELECT *)
  match fst st.toks.(st.pos + 1) with
  | Lexer.KW "SELECT" -> true
  | _ -> false

and parse_comparison st =
  let comparison () =
    let lhs = parse_operand st in
    match peek st with
    | Lexer.KW "BETWEEN" ->
      (* e BETWEEN lo AND hi  ==>  e >= lo AND e <= hi *)
      advance st;
      let lo = parse_expr st in
      eat_kw st "AND";
      let hi = parse_expr st in
      C_and (C_cmp (Expr.Ge, lhs, O_expr lo), C_cmp (Expr.Le, lhs, O_expr hi))
    | Lexer.KW "IN" ->
      (* e IN (v1, .., vn)  ==>  e = v1 OR .. OR e = vn *)
      advance st;
      eat st Lexer.LPAREN;
      let rec values () =
        let v = parse_expr st in
        if peek st = Lexer.COMMA then begin
          advance st;
          v :: values ()
        end
        else [ v ]
      in
      let vs = values () in
      eat st Lexer.RPAREN;
      let eqs = List.map (fun v -> C_cmp (Expr.Eq, lhs, O_expr v)) vs in
      (match eqs with
       | [] -> fail st "IN needs at least one value"
       | e :: rest -> List.fold_left (fun acc e' -> C_or (acc, e')) e rest)
    | _ -> (
      match cmp_of_token (peek st) with
      | Some op ->
        advance st;
        let rhs = parse_operand st in
        C_cmp (op, lhs, rhs)
      | None -> fail st "expected comparison operator")
  in
  match peek st with
  | Lexer.LPAREN when not (is_subquery st) -> (
    (* '(' is ambiguous: a grouped condition or a parenthesized expression
       operand.  Try the condition reading first and backtrack. *)
    let saved = st.pos in
    match
      advance st;
      let c = parse_cond st in
      eat st Lexer.RPAREN;
      c
    with
    | c -> c
    | exception Parse_error _ ->
      st.pos <- saved;
      comparison ())
  | _ -> comparison ()

(* ---- select ---- *)

and parse_select_item st =
  match peek st with
  | Lexer.STAR ->
    advance st;
    I_star
  | Lexer.KW kw when agg_func_of_kw kw <> None ->
    let agg = parse_agg_call st kw in
    I_agg (agg, parse_alias st)
  | _ ->
    let e = parse_expr st in
    I_expr (e, parse_alias st)

and parse_alias st =
  match peek st with
  | Lexer.KW "AS" ->
    advance st;
    Some (ident st)
  | Lexer.IDENT a ->
    advance st;
    Some a
  | _ -> None

and parse_select_body st =
  eat_kw st "SELECT";
  let s_distinct =
    match peek st with
    | Lexer.KW "ALL" ->
      advance st;
      false
    | Lexer.KW "DISTINCT" ->
      advance st;
      true
    | _ -> false
  in
  let rec items () =
    let i = parse_select_item st in
    if peek st = Lexer.COMMA then begin
      advance st;
      i :: items ()
    end
    else [ i ]
  in
  let s_items = items () in
  eat_kw st "FROM";
  let rec refs () =
    let name = ident st in
    let alias = parse_alias st in
    if peek st = Lexer.COMMA then begin
      advance st;
      (name, alias) :: refs ()
    end
    else [ (name, alias) ]
  in
  let s_from = refs () in
  let s_where =
    match peek st with
    | Lexer.KW "WHERE" ->
      advance st;
      Some (parse_cond st)
    | _ -> None
  in
  let s_group =
    match peek st with
    | Lexer.KW "GROUP" ->
      advance st;
      eat_kw st "BY";
      let rec cols () =
        let q = ident st in
        let col =
          if peek st = Lexer.DOT then begin
            advance st;
            (Some q, ident st)
          end
          else (None, q)
        in
        if peek st = Lexer.COMMA then begin
          advance st;
          col :: cols ()
        end
        else [ col ]
      in
      cols ()
    | _ -> []
  in
  let s_having =
    match peek st with
    | Lexer.KW "HAVING" ->
      advance st;
      Some (parse_cond st)
    | _ -> None
  in
  let s_order =
    match peek st with
    | Lexer.KW "ORDER" ->
      advance st;
      eat_kw st "BY";
      let rec cols () =
        let q = ident st in
        let o_qual, o_col =
          if peek st = Lexer.DOT then begin
            advance st;
            (Some q, ident st)
          end
          else (None, q)
        in
        let o_desc =
          match peek st with
          | Lexer.KW "ASC" ->
            advance st;
            false
          | Lexer.KW "DESC" ->
            advance st;
            true
          | _ -> false
        in
        let col = { o_qual; o_col; o_desc } in
        if peek st = Lexer.COMMA then begin
          advance st;
          col :: cols ()
        end
        else [ col ]
      in
      cols ()
    | _ -> []
  in
  let s_limit =
    match peek st with
    | Lexer.KW "LIMIT" -> (
      advance st;
      match peek st with
      | Lexer.INT n when n >= 0 ->
        advance st;
        Some n
      | _ -> fail st "expected non-negative integer after LIMIT")
    | _ -> None
  in
  { s_distinct; s_items; s_from; s_where; s_group; s_having; s_order; s_limit }

let parse_insert st =
  eat_kw st "INSERT";
  eat_kw st "INTO";
  let it_table = ident st in
  eat_kw st "VALUES";
  let parse_row () =
    eat st Lexer.LPAREN;
    let rec values () =
      let v = parse_expr st in
      if peek st = Lexer.COMMA then begin
        advance st;
        v :: values ()
      end
      else [ v ]
    in
    let vs = values () in
    eat st Lexer.RPAREN;
    vs
  in
  let rec rows () =
    let r = parse_row () in
    if peek st = Lexer.COMMA then begin
      advance st;
      r :: rows ()
    end
    else [ r ]
  in
  S_insert { it_table; it_rows = rows () }

let parse_statement st =
  match peek st with
  | Lexer.KW "INSERT" -> parse_insert st
  | Lexer.KW "DROP" ->
    advance st;
    eat_kw st "MATERIALIZED";
    eat_kw st "VIEW";
    S_drop_matview (ident st)
  | Lexer.KW "REFRESH" ->
    advance st;
    eat_kw st "MATERIALIZED";
    eat_kw st "VIEW";
    S_refresh_matview (ident st)
  | Lexer.KW "CREATE" when fst st.toks.(st.pos + 1) = Lexer.KW "MATERIALIZED" ->
    advance st;
    eat_kw st "MATERIALIZED";
    eat_kw st "VIEW";
    let mv_name = ident st in
    eat_kw st "AS";
    let mv_body = parse_select_body st in
    S_create_matview { mv_name; mv_body }
  | Lexer.KW "CREATE" ->
    advance st;
    eat_kw st "VIEW";
    let cv_name = ident st in
    let cv_cols =
      if peek st = Lexer.LPAREN then begin
        advance st;
        let rec cols () =
          let c = ident st in
          if peek st = Lexer.COMMA then begin
            advance st;
            c :: cols ()
          end
          else [ c ]
        in
        let cs = cols () in
        eat st Lexer.RPAREN;
        Some cs
      end
      else None
    in
    eat_kw st "AS";
    let cv_body = parse_select_body st in
    S_create_view { cv_name; cv_cols; cv_body }
  | _ -> S_select (parse_select_body st)

let parse_script src =
  let st = { toks = Lexer.tokenize src; pos = 0 } in
  let rec stmts () =
    if peek st = Lexer.EOF then []
    else begin
      let s = parse_statement st in
      (match peek st with
       | Lexer.SEMI -> advance st
       | Lexer.EOF -> ()
       | _ -> fail st "expected ; or end of input");
      s :: stmts ()
    end
  in
  stmts ()

let parse_select src =
  let st = { toks = Lexer.tokenize src; pos = 0 } in
  let s = parse_select_body st in
  (match peek st with
   | Lexer.SEMI -> advance st
   | _ -> ());
  if peek st <> Lexer.EOF then fail st "trailing input";
  s
