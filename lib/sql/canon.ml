(* Canonical template serialization and positional literal parameterization
   of the bound multi-block form.  The traversal order here is a contract:
   [serialize], [params] and [substitute] must all visit predicate constants
   in exactly the same sequence, and the service layer's plan re-binding
   relies on that agreement. *)

let value_tag = function
  | Value.Int _ -> "i"
  | Value.Float _ -> "f"
  | Value.String _ -> "s"
  | Value.Bool _ -> "b"
  | Value.Date _ -> "d"

let value_sig v = value_tag v ^ Value.to_string v

let col_sig (c : Schema.column) =
  Printf.sprintf "%s.%s:%s" c.Schema.cqual c.Schema.cname
    (match c.Schema.cty with
     | Datatype.Int -> "I"
     | Datatype.Float -> "F"
     | Datatype.String -> "S"
     | Datatype.Bool -> "B"
     | Datatype.Date -> "D")

let binop_sig = function
  | Expr.Add -> "+"
  | Expr.Sub -> "-"
  | Expr.Mul -> "*"
  | Expr.Div -> "/"

let cmp_sig = function
  | Expr.Eq -> "="
  | Expr.Ne -> "<>"
  | Expr.Lt -> "<"
  | Expr.Le -> "<="
  | Expr.Gt -> ">"
  | Expr.Ge -> ">="

(* [konst] renders a constant: "?" inside predicates (parameterized), the
   tagged value elsewhere (part of the template). *)
let rec expr_sig ~konst = function
  | Expr.Col c -> col_sig c
  | Expr.Const v -> konst v
  | Expr.Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (binop_sig op) (expr_sig ~konst a)
      (expr_sig ~konst b)

let rec pred_sig ~konst = function
  | Expr.Cmp (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (cmp_sig op) (expr_sig ~konst a)
      (expr_sig ~konst b)
  | Expr.And (a, b) ->
    Printf.sprintf "(and %s %s)" (pred_sig ~konst a) (pred_sig ~konst b)
  | Expr.Or (a, b) ->
    Printf.sprintf "(or %s %s)" (pred_sig ~konst a) (pred_sig ~konst b)
  | Expr.Not a -> Printf.sprintf "(not %s)" (pred_sig ~konst a)

let template_pred_sig = pred_sig ~konst:(fun _ -> "?")

let order_preds ps =
  List.stable_sort
    (fun a b -> String.compare (template_pred_sig a) (template_pred_sig b))
    ps

let agg_sig (a : Aggregate.t) =
  let fname =
    match a.Aggregate.func with
    | Aggregate.Count_star -> "count*"
    | Aggregate.Count -> "count"
    | Aggregate.Sum -> "sum"
    | Aggregate.Avg -> "avg"
    | Aggregate.Min -> "min"
    | Aggregate.Max -> "max"
    | Aggregate.Udf u -> "udf:" ^ u.Aggregate.udf_name
  in
  Printf.sprintf "%s(%s)->%s" fname
    (match a.Aggregate.arg with
     | None -> ""
     | Some e -> expr_sig ~konst:value_sig e)
    a.Aggregate.out_name

let rel_sig (r : Block.rel) = r.Block.r_alias ^ "=" ^ r.Block.r_table

let out_sig = function
  | Block.Out_key (c, name) -> Printf.sprintf "k:%s->%s" (col_sig c) name
  | Block.Out_agg a -> "a:" ^ agg_sig a

let sel_sig = function
  | Block.Sel_col (c, name) -> Printf.sprintf "c:%s->%s" (col_sig c) name
  | Block.Sel_agg a -> "a:" ^ agg_sig a

let serialize (q : Block.query) =
  let buf = Buffer.create 512 in
  let add = Buffer.add_string buf in
  let list tag f xs =
    add tag;
    add "[";
    List.iter
      (fun x ->
        add (f x);
        add ";")
      xs;
    add "]"
  in
  List.iter
    (fun (v : Block.view) ->
      add "view ";
      add v.Block.v_alias;
      list " rels" rel_sig v.Block.v_rels;
      list " where" template_pred_sig (order_preds v.Block.v_preds);
      list " by" col_sig v.Block.v_keys;
      list " aggs" agg_sig v.Block.v_aggs;
      list " having" template_pred_sig (order_preds v.Block.v_having);
      list " out" out_sig v.Block.v_out;
      add "\n")
    q.Block.q_views;
  add "outer";
  list " rels" rel_sig q.Block.q_rels;
  list " where" template_pred_sig (order_preds q.Block.q_preds);
  if q.Block.q_grouped then begin
    list " by" col_sig q.Block.q_keys;
    list " aggs" agg_sig q.Block.q_aggs;
    list " having" template_pred_sig (order_preds q.Block.q_having)
  end;
  list " select" sel_sig q.Block.q_select;
  list " order" (fun (s, desc) -> if desc then s ^ " desc" else s) q.Block.q_order;
  (match q.Block.q_limit with
   | None -> ()
   | Some n -> add (Printf.sprintf " limit %d" n));
  Buffer.contents buf

(* Shared constant traversal: [visit] receives each predicate constant in
   canonical order and returns its replacement.  [params] taps it with an
   accumulator; [substitute] with a cursor over the new vector. *)

let rec map_expr_consts visit = function
  | Expr.Col _ as e -> e
  | Expr.Const v -> Expr.Const (visit v)
  | Expr.Binop (op, a, b) ->
    let a = map_expr_consts visit a in
    let b = map_expr_consts visit b in
    Expr.Binop (op, a, b)

let rec map_pred_consts visit = function
  | Expr.Cmp (op, a, b) ->
    let a = map_expr_consts visit a in
    let b = map_expr_consts visit b in
    Expr.Cmp (op, a, b)
  | Expr.And (a, b) ->
    let a = map_pred_consts visit a in
    let b = map_pred_consts visit b in
    Expr.And (a, b)
  | Expr.Or (a, b) ->
    let a = map_pred_consts visit a in
    let b = map_pred_consts visit b in
    Expr.Or (a, b)
  | Expr.Not a -> Expr.Not (map_pred_consts visit a)

(* Visit the canonically ordered conjuncts, but return the rewritten list in
   the query's original order: substitution must not change plan shape or
   pretty-printing, only constants. *)
let map_preds visit ps =
  let tagged = List.mapi (fun i p -> (i, p)) ps in
  let sorted =
    List.stable_sort
      (fun (_, a) (_, b) ->
        String.compare (template_pred_sig a) (template_pred_sig b))
      tagged
  in
  let rewritten = List.map (fun (i, p) -> (i, map_pred_consts visit p)) sorted in
  List.map (fun (i, _) -> List.assoc i rewritten) tagged

let map_query_consts visit (q : Block.query) =
  let views =
    List.map
      (fun (v : Block.view) ->
        let v_preds = map_preds visit v.Block.v_preds in
        let v_having = map_preds visit v.Block.v_having in
        { v with Block.v_preds; v_having })
      q.Block.q_views
  in
  let q_preds = map_preds visit q.Block.q_preds in
  let q_having = map_preds visit q.Block.q_having in
  { q with Block.q_views = views; q_preds; q_having }

let params q =
  let acc = ref [] in
  ignore
    (map_query_consts
       (fun v ->
         acc := v :: !acc;
         v)
       q);
  List.rev !acc

let substitute q vals =
  let remaining = ref vals in
  let result =
    map_query_consts
      (fun old ->
        match !remaining with
        | [] -> invalid_arg "Canon.substitute: too few parameters"
        | v :: rest ->
          remaining := rest;
          if not (String.equal (value_tag v) (value_tag old)) then
            invalid_arg
              (Printf.sprintf
                 "Canon.substitute: parameter type mismatch (%s where the \
                  template has %s)"
                 (Value.to_string v) (Value.to_string old));
          v)
      q
  in
  if !remaining <> [] then invalid_arg "Canon.substitute: too many parameters";
  result
