type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | SEMI
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Lex_error of string * int

let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "AS"; "AND"; "OR";
    "ORDER"; "LIMIT"; "BETWEEN"; "IN"; "DISTINCT"; "ASC"; "DESC";
    "NOT"; "CREATE"; "VIEW"; "COUNT"; "SUM"; "AVG"; "MIN"; "MAX"; "ALL";
    "INSERT"; "INTO"; "VALUES"; "MATERIALIZED"; "DROP"; "REFRESH";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit tok pos = tokens := (tok, pos) :: !tokens in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  while !pos < n do
    let start = !pos in
    let c = src.[start] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '-' && peek 1 = Some '-' then begin
      (* line comment *)
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if is_ident_start c then begin
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      let word = String.sub src start (!pos - start) in
      let upper = String.uppercase_ascii word in
      if List.mem upper keywords then emit (KW upper) start
      else emit (IDENT word) start
    end
    else if is_digit c then begin
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      if !pos < n && src.[!pos] = '.' && !pos + 1 < n && is_digit src.[!pos + 1]
      then begin
        incr pos;
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done;
        emit (FLOAT (float_of_string (String.sub src start (!pos - start)))) start
      end
      else emit (INT (int_of_string (String.sub src start (!pos - start)))) start
    end
    else if c = '\'' then begin
      incr pos;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !pos < n do
        if src.[!pos] = '\'' then
          if !pos + 1 < n && src.[!pos + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            pos := !pos + 2
          end
          else begin
            closed := true;
            incr pos
          end
        else begin
          Buffer.add_char buf src.[!pos];
          incr pos
        end
      done;
      if not !closed then raise (Lex_error ("unterminated string", start));
      emit (STRING (Buffer.contents buf)) start
    end
    else begin
      let two = if start + 1 < n then String.sub src start 2 else "" in
      match two with
      | "<>" | "!=" ->
        emit NE start;
        pos := start + 2
      | "<=" ->
        emit LE start;
        pos := start + 2
      | ">=" ->
        emit GE start;
        pos := start + 2
      | _ -> (
        incr pos;
        match c with
        | '(' -> emit LPAREN start
        | ')' -> emit RPAREN start
        | ',' -> emit COMMA start
        | '.' -> emit DOT start
        | ';' -> emit SEMI start
        | '*' -> emit STAR start
        | '+' -> emit PLUS start
        | '-' -> emit MINUS start
        | '/' -> emit SLASH start
        | '=' -> emit EQ start
        | '<' -> emit LT start
        | '>' -> emit GT start
        | c ->
          raise (Lex_error (Printf.sprintf "unexpected character %C" c, start)))
    end
  done;
  emit EOF n;
  Array.of_list (List.rev !tokens)

let token_to_string = function
  | IDENT s -> s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> "'" ^ s ^ "'"
  | KW k -> k
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | SEMI -> ";"
  | STAR -> "*"
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | EQ -> "="
  | NE -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<eof>"
