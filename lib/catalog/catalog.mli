(** The catalog: tables with storage, keys, indexes and statistics.

    A catalog owns one {!Storage.t}; loading a table creates its heap file,
    analyzes statistics from the loaded data, and builds B+-tree indexes on
    the primary-key column and any extra requested columns.  Declared
    primary keys and foreign keys drive the paper's transformations: pull-up
    needs a key of the joined relation (Definition 1) and skips adding it
    for foreign-key joins; invariant grouping's applicability test also
    relies on keys. *)

type table = {
  tname : string;
  tschema : Schema.t;             (** columns qualified with [tname] *)
  primary_key : string list;      (** names of the PK columns *)
  heap : Heap_file.t;
  indexes : (string * Btree.t) list;  (** indexed column name -> index *)
  tstats : Stats.table_stats;
  clustered : string option;
      (** column the heap is physically ordered by; index access on it
          touches contiguous pages *)
}

type foreign_key = {
  fk_table : string;
  fk_column : string;
  pk_table : string;
  pk_column : string;
}

type t

val create : ?frames:int -> unit -> t
(** Fresh catalog with its own storage manager ([frames] buffer-pool pages,
    default 256). *)

val storage : t -> Storage.t

val epoch : t -> int
(** Monotonic catalog version.  Starts at 0 and is bumped by every DDL
    operation ({!add_table}, {!add_foreign_key}) and by {!refresh_stats}.
    Consumers that cache anything derived from the catalog (plans,
    statistics snapshots) must key it by the epoch: a plan built under an
    older epoch may rely on tables, keys or statistics that have since
    changed. *)

val bump_epoch : t -> unit
(** Force an epoch bump without changing the catalog (testing and external
    invalidation hooks). *)

val table_version : t -> string -> int
(** Per-table write version: 0 at load, bumped by every {!insert} and
    {!replace_rows} of that table.  Lets derived state (materialized views)
    track staleness per base table instead of being invalidated by the
    global {!epoch}, which moves on every catalog change. *)

val refresh_stats : t -> unit
(** Re-run the analyze pass of every table from its current heap contents
    and bump the epoch.  Cheap on the synthetic workloads (full scan per
    table); cached plans are invalidated because their costing is stale. *)

val add_table :
  t ->
  name:string ->
  columns:(string * Datatype.t) list ->
  pk:string list ->
  ?index:string list ->
  ?cluster:string ->
  Tuple.t list ->
  table
(** Load a table.  [index] lists extra single-column indexes beyond the one
    built on the first PK column.  [cluster] physically sorts the rows by
    that column before loading (an index on it is built too); without it
    the heap is clustered on the first PK column (rows are sorted by it).
    @raise Invalid_argument if the name is taken, a PK/index column is
    unknown, or the data is empty. *)

val insert : t -> table:string -> Tuple.t list -> Tuple.t list
(** Append rows to a table: heap append, index maintenance, incremental
    statistics (cardinality and page count exact; min/max widened; NDV and
    histograms stay as last analyzed until {!refresh_stats}), then a table
    version bump and an epoch bump (so cached plans are invalidated).
    Rows carry the visible columns; when the key is a synthesized [_rid]
    the internal tuple id is appended here.  Returns the stored full-width
    rows (maintenance of derived state needs the stored form).
    @raise Invalid_argument on an unknown table or wrong arity. *)

val drop_table : t -> string -> unit
(** Remove a table: heap pages released, catalog entry, foreign keys
    touching it and its write version dropped, epoch bumped.
    @raise Invalid_argument on an unknown table. *)

val replace_rows : t -> string -> Tuple.t list -> table
(** Atomically swap a table's contents (materialized-view maintenance and
    REFRESH): the heap is rebuilt from [rows] (full schema width, including
    any [_rid] values), statistics re-analyzed, indexes rebuilt; keys,
    clustering and indexed columns are preserved.  Bumps the table version
    and the epoch.
    @raise Invalid_argument on an unknown table or empty [rows]. *)

val restore_table :
  t ->
  name:string ->
  columns:(string * Datatype.t) list ->
  pk:string list ->
  ?index:string list ->
  ?cluster:string ->
  Tuple.t list ->
  table
(** Rebuild a table from a durable checkpoint.  Unlike {!add_table}, rows
    arrive full-width (hidden [_rid] values included) and are appended in
    the given order — the checkpoint preserves the exact pre-crash heap
    order, and re-sorting would break byte-identical recovery.  Indexes are
    rebuilt, statistics re-analyzed, epoch bumped. *)

val put_system_table :
  t -> name:string -> columns:(string * Datatype.t) list -> Tuple.t list -> table
(** Install (or replace) a synthesized system view ([avq_stat_*],
    [avq_server_*]) as an ordinary in-memory table: no primary key, no
    hidden [_rid], no indexes, no clustering, empty rows allowed.  The
    epoch is bumped only on first install or a schema change — replacing a
    same-shaped snapshot is invisible to cached plans (scans resolve the
    heap by name at execution time), so monitoring queries do not flush the
    plan cache.  Callers (the service) refresh these on demand right before
    binding a query that references them; they must be excluded from
    checkpoints. *)

val set_table_version : t -> string -> int -> unit
(** Restore a table's write version from a checkpoint (recovery only). *)

val restore_foreign_key : t -> foreign_key -> unit
(** Re-register a foreign key from a checkpoint without re-validating
    (recovery only; the key was validated when first declared). *)

val add_foreign_key :
  t -> from:string * string -> refs:string * string -> unit
(** Declare [from] (table, column) referencing [refs] (table, PK column).
    @raise Invalid_argument if either side is unknown or [refs] is not the
    single-column primary key of its table. *)

val find_table : t -> string -> table option
val table_exn : t -> string -> table
val tables : t -> table list
val foreign_keys : t -> foreign_key list

val column_stats : table -> string -> Stats.column_stats
(** @raise Not_found for an unknown column name. *)

val index_on : table -> string -> Btree.t option

val is_superkey : table -> string list -> bool
(** [is_superkey tbl cols] — do [cols] (column names of [tbl]) contain the
    primary key? *)

val is_fk_join : t -> from:string * string -> refs:string * string -> bool
(** Is there a declared foreign key matching this equi-join? *)
