type table = {
  tname : string;
  tschema : Schema.t;
  primary_key : string list;
  heap : Heap_file.t;
  indexes : (string * Btree.t) list;
  tstats : Stats.table_stats;
  clustered : string option;
}

type foreign_key = {
  fk_table : string;
  fk_column : string;
  pk_table : string;
  pk_column : string;
}

type t = {
  storage : Storage.t;
  mutable table_list : table list;
  mutable fks : foreign_key list;
  mutable epoch : int;
  (* Per-table write version: bumped by every insert/replace of that table.
     Consumers tracking derived state (materialized views) compare absorbed
     versions against these to decide staleness without being invalidated by
     unrelated tables' writes (the global epoch moves on every change). *)
  versions : (string, int) Hashtbl.t;
}

let create ?frames () =
  { storage = Storage.create ?frames (); table_list = []; fks = []; epoch = 0;
    versions = Hashtbl.create 16 }

let epoch t = t.epoch
let bump_epoch t = t.epoch <- t.epoch + 1

let table_version t name =
  Option.value ~default:0 (Hashtbl.find_opt t.versions name)

let bump_version t name = Hashtbl.replace t.versions name (table_version t name + 1)

let storage t = t.storage

let find_table t name =
  List.find_opt (fun tbl -> String.equal tbl.tname name) t.table_list

let table_exn t name =
  match find_table t name with
  | Some tbl -> tbl
  | None -> invalid_arg (Printf.sprintf "Catalog: unknown table %s" name)

let tables t = t.table_list
let foreign_keys t = t.fks

let add_table t ~name ~columns ~pk ?(index = []) ?cluster rows =
  if find_table t name <> None then
    invalid_arg (Printf.sprintf "Catalog.add_table: duplicate table %s" name);
  let check_col c =
    if not (List.exists (fun (n, _) -> String.equal n c) columns) then
      invalid_arg (Printf.sprintf "Catalog.add_table %s: unknown column %s" name c)
  in
  List.iter check_col pk;
  List.iter check_col index;
  Option.iter check_col cluster;
  if rows = [] then invalid_arg (Printf.sprintf "Catalog.add_table %s: no rows" name);
  (* No declared primary key: materialize the internal tuple id as a hidden
     [_rid] column and use it as the key (paper, Section 3: "the query
     engine can use the internal tuple id as a key"). *)
  let columns, pk, rows =
    if pk <> [] then (columns, pk, rows)
    else
      ( columns @ [ ("_rid", Datatype.Int) ],
        [ "_rid" ],
        List.mapi (fun i t -> Tuple.concat t [| Value.Int i |]) rows )
  in
  let schema =
    Schema.of_columns
      (List.map (fun (cname, ty) -> Schema.column ~qual:name cname ty) columns)
  in
  let clustered =
    match cluster, pk with
    | Some c, _ -> Some c
    | None, c :: _ -> Some c
    | None, [] -> None
  in
  let rows =
    match clustered with
    | None -> rows
    | Some c ->
      let i = Schema.find_exn schema c in
      List.stable_sort (fun a b -> Value.compare (Tuple.get a i) (Tuple.get b i)) rows
  in
  let heap = Storage.create_heap t.storage schema in
  Heap_file.append_all heap rows;
  let tstats = Stats.analyze schema rows in
  let to_index =
    let pk_head = match pk with [] -> [] | c :: _ -> [ c ] in
    let clustered_col = match clustered with None -> [] | Some c -> [ c ] in
    List.sort_uniq String.compare (pk_head @ clustered_col @ index)
  in
  let indexes =
    List.map
      (fun cname ->
        let col = Schema.find_exn schema cname in
        (cname, Storage.build_index t.storage heap ~column:col))
      to_index
  in
  let tbl =
    { tname = name; tschema = schema; primary_key = pk; heap; indexes; tstats;
      clustered }
  in
  t.table_list <- t.table_list @ [ tbl ];
  bump_epoch t;
  tbl

(* Restore a table from a durable checkpoint.  Rows arrive full-width (any
   hidden [_rid] values included) and in exact stored heap order — a
   pre-crash heap is a sorted initial load plus an unsorted appended tail,
   so re-sorting by the clustered column here would break byte-identical
   recovery.  No key synthesis, no sort: append verbatim. *)
let restore_table t ~name ~columns ~pk ?(index = []) ?cluster rows =
  if find_table t name <> None then
    invalid_arg (Printf.sprintf "Catalog.restore_table: duplicate table %s" name);
  if rows = [] then
    invalid_arg (Printf.sprintf "Catalog.restore_table %s: no rows" name);
  let schema =
    Schema.of_columns
      (List.map (fun (cname, ty) -> Schema.column ~qual:name cname ty) columns)
  in
  let clustered =
    match cluster, pk with
    | Some c, _ -> Some c
    | None, c :: _ -> Some c
    | None, [] -> None
  in
  let heap = Storage.create_heap t.storage schema in
  Heap_file.append_all heap rows;
  let tstats = Stats.analyze schema rows in
  let to_index =
    let pk_head = match pk with [] -> [] | c :: _ -> [ c ] in
    let clustered_col = match clustered with None -> [] | Some c -> [ c ] in
    List.sort_uniq String.compare (pk_head @ clustered_col @ index)
  in
  let indexes =
    List.map
      (fun cname ->
        let col = Schema.find_exn schema cname in
        (cname, Storage.build_index t.storage heap ~column:col))
      to_index
  in
  let tbl =
    { tname = name; tschema = schema; primary_key = pk; heap; indexes; tstats;
      clustered }
  in
  t.table_list <- t.table_list @ [ tbl ];
  bump_epoch t;
  tbl

(* System views ([avq_stat_*], [avq_server_*]): synthesized in-memory
   relations refreshed by replacing the whole table.  Unlike user tables they
   may be empty, carry no key (no hidden [_rid] — their rows have no
   identity), no indexes, and no clustering; statistics are analyzed from
   the snapshot when non-empty, or faked from one per-type default row with
   the cardinality forced to 0 (the optimizer only needs non-crashing
   numbers — nobody joins system views on cost-sensitive paths). *)
let put_system_table t ~name ~columns rows =
  (* Replacing a same-shaped snapshot is invisible to cached plans: scans
     resolve the heap by name at execution time, so only the FIRST install
     (or a schema change) needs an epoch bump to invalidate — a monitoring
     query must not flush the plan cache on every refresh. *)
  let same_shape = ref false in
  (match find_table t name with
   | Some tbl ->
     same_shape :=
       List.length columns = Schema.arity tbl.tschema
       && List.for_all2
            (fun (cname, ty) col ->
              String.equal cname col.Schema.cname
              && Datatype.equal ty col.Schema.cty)
            columns
            (Schema.columns tbl.tschema);
     Heap_file.drop tbl.heap;
     t.table_list <-
       List.filter (fun x -> not (String.equal x.tname name)) t.table_list
   | None -> ());
  let schema =
    Schema.of_columns
      (List.map (fun (cname, ty) -> Schema.column ~qual:name cname ty) columns)
  in
  let heap = Storage.create_heap t.storage schema in
  Heap_file.append_all heap rows;
  let tstats =
    match rows with
    | [] ->
      let default_value = function
        | Datatype.Int -> Value.Int 0
        | Datatype.Float -> Value.Float 0.
        | Datatype.String -> Value.String ""
        | Datatype.Bool -> Value.Bool false
        | Datatype.Date -> Value.Date 0
      in
      let dummy = Tuple.make (List.map (fun (_, ty) -> default_value ty) columns) in
      let st = Stats.analyze schema [ dummy ] in
      { st with Stats.card = 0; pages = 0 }
    | _ -> Stats.analyze schema rows
  in
  let tbl =
    { tname = name; tschema = schema; primary_key = []; heap; indexes = [];
      tstats; clustered = None }
  in
  t.table_list <- t.table_list @ [ tbl ];
  if not !same_shape then bump_epoch t;
  tbl

let set_table_version t name v = Hashtbl.replace t.versions name v

let restore_foreign_key t fk = t.fks <- t.fks @ [ fk ]

let replace_table t tbl' =
  t.table_list <-
    List.map
      (fun x -> if String.equal x.tname tbl'.tname then tbl' else x)
      t.table_list

let insert t ~table rows =
  let tbl = table_exn t table in
  if rows = [] then []
  else begin
    let arity = Schema.arity tbl.tschema in
    (* A synthesized [_rid] key never appears in user-facing INSERTs; assign
       the next internal tuple ids (the heap is append-only, so
       [nrows + i] is fresh and monotonic). *)
    let hidden_rid = tbl.primary_key = [ "_rid" ] in
    let next_rid = Heap_file.nrows tbl.heap in
    let rows =
      List.mapi
        (fun i r ->
          let a = Tuple.arity r in
          if a = arity then r
          else if hidden_rid && a = arity - 1 then
            Tuple.concat r [| Value.Int (next_rid + i) |]
          else
            invalid_arg
              (Printf.sprintf "Catalog.insert %s: row arity %d, expected %d"
                 table a (if hidden_rid then arity - 1 else arity)))
        rows
    in
    let rids = Storage.Table.insert tbl.heap rows in
    List.iter
      (fun (cname, idx) ->
        let col = Schema.find_exn tbl.tschema cname in
        List.iter2
          (fun row rid -> Btree.insert idx (Tuple.get row col) rid)
          rows rids)
      tbl.indexes;
    (* Incremental statistics: exact cardinality and page count, value
       bounds widened to cover the new rows.  NDV and histograms are left
       as analyzed (they can only be refreshed by a scan; {!refresh_stats}
       makes them exact again). *)
    let n = List.length rows in
    let widen i cs =
      let vmin, vmax =
        List.fold_left
          (fun (lo, hi) row ->
            let v = Tuple.get row i in
            ( (if Value.compare v lo < 0 then v else lo),
              if Value.compare v hi > 0 then v else hi ))
          (cs.Stats.vmin, cs.Stats.vmax)
          rows
      in
      { cs with Stats.vmin; vmax }
    in
    let tstats =
      { tbl.tstats with
        Stats.card = tbl.tstats.Stats.card + n;
        pages = Heap_file.npages tbl.heap;
        columns = Array.mapi widen tbl.tstats.Stats.columns }
    in
    replace_table t { tbl with tstats };
    bump_version t table;
    bump_epoch t;
    rows
  end

let drop_table t name =
  let tbl = table_exn t name in
  Heap_file.drop tbl.heap;
  t.table_list <-
    List.filter (fun x -> not (String.equal x.tname name)) t.table_list;
  t.fks <-
    List.filter
      (fun fk ->
        not (String.equal fk.fk_table name || String.equal fk.pk_table name))
      t.fks;
  Hashtbl.remove t.versions name;
  bump_epoch t

let replace_rows t name rows =
  let tbl = table_exn t name in
  let columns =
    List.map (fun c -> (c.Schema.cname, c.Schema.cty)) (Schema.columns tbl.tschema)
  in
  let index = List.map fst tbl.indexes in
  let saved_fks = t.fks in
  Heap_file.drop tbl.heap;
  t.table_list <-
    List.filter (fun x -> not (String.equal x.tname name)) t.table_list;
  let tbl' =
    add_table t ~name ~columns ~pk:tbl.primary_key ~index ?cluster:tbl.clustered
      rows
  in
  t.fks <- saved_fks;
  bump_version t name;
  tbl'

let add_foreign_key t ~from:(ft, fc) ~refs:(pt, pc) =
  let ftbl = table_exn t ft and ptbl = table_exn t pt in
  let has_col tbl c = Schema.find tbl.tschema c <> None in
  if not (has_col ftbl fc) then
    invalid_arg (Printf.sprintf "add_foreign_key: %s has no column %s" ft fc);
  if not (has_col ptbl pc) then
    invalid_arg (Printf.sprintf "add_foreign_key: %s has no column %s" pt pc);
  if ptbl.primary_key <> [ pc ] then
    invalid_arg
      (Printf.sprintf "add_foreign_key: %s.%s is not the primary key" pt pc);
  t.fks <- { fk_table = ft; fk_column = fc; pk_table = pt; pk_column = pc } :: t.fks;
  bump_epoch t

let refresh_stats t =
  t.table_list <-
    List.map
      (fun tbl ->
        let rows = List.of_seq (Heap_file.to_seq tbl.heap) in
        { tbl with tstats = Stats.analyze tbl.tschema rows })
      t.table_list;
  bump_epoch t

let column_stats tbl cname =
  match Schema.find tbl.tschema cname with
  | None -> raise Not_found
  | Some i -> tbl.tstats.Stats.columns.(i)

let index_on tbl cname =
  List.assoc_opt cname tbl.indexes

let is_superkey tbl cols =
  tbl.primary_key <> []
  && List.for_all (fun k -> List.exists (String.equal k) cols) tbl.primary_key

let is_fk_join t ~from:(ft, fc) ~refs:(pt, pc) =
  List.exists
    (fun fk ->
      String.equal fk.fk_table ft && String.equal fk.fk_column fc
      && String.equal fk.pk_table pt && String.equal fk.pk_column pc)
    t.fks
