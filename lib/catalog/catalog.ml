type table = {
  tname : string;
  tschema : Schema.t;
  primary_key : string list;
  heap : Heap_file.t;
  indexes : (string * Btree.t) list;
  tstats : Stats.table_stats;
  clustered : string option;
}

type foreign_key = {
  fk_table : string;
  fk_column : string;
  pk_table : string;
  pk_column : string;
}

type t = {
  storage : Storage.t;
  mutable table_list : table list;
  mutable fks : foreign_key list;
  mutable epoch : int;
}

let create ?frames () =
  { storage = Storage.create ?frames (); table_list = []; fks = []; epoch = 0 }

let epoch t = t.epoch
let bump_epoch t = t.epoch <- t.epoch + 1

let storage t = t.storage

let find_table t name =
  List.find_opt (fun tbl -> String.equal tbl.tname name) t.table_list

let table_exn t name =
  match find_table t name with
  | Some tbl -> tbl
  | None -> invalid_arg (Printf.sprintf "Catalog: unknown table %s" name)

let tables t = t.table_list
let foreign_keys t = t.fks

let add_table t ~name ~columns ~pk ?(index = []) ?cluster rows =
  if find_table t name <> None then
    invalid_arg (Printf.sprintf "Catalog.add_table: duplicate table %s" name);
  let check_col c =
    if not (List.exists (fun (n, _) -> String.equal n c) columns) then
      invalid_arg (Printf.sprintf "Catalog.add_table %s: unknown column %s" name c)
  in
  List.iter check_col pk;
  List.iter check_col index;
  Option.iter check_col cluster;
  if rows = [] then invalid_arg (Printf.sprintf "Catalog.add_table %s: no rows" name);
  (* No declared primary key: materialize the internal tuple id as a hidden
     [_rid] column and use it as the key (paper, Section 3: "the query
     engine can use the internal tuple id as a key"). *)
  let columns, pk, rows =
    if pk <> [] then (columns, pk, rows)
    else
      ( columns @ [ ("_rid", Datatype.Int) ],
        [ "_rid" ],
        List.mapi (fun i t -> Tuple.concat t [| Value.Int i |]) rows )
  in
  let schema =
    Schema.of_columns
      (List.map (fun (cname, ty) -> Schema.column ~qual:name cname ty) columns)
  in
  let clustered =
    match cluster, pk with
    | Some c, _ -> Some c
    | None, c :: _ -> Some c
    | None, [] -> None
  in
  let rows =
    match clustered with
    | None -> rows
    | Some c ->
      let i = Schema.find_exn schema c in
      List.stable_sort (fun a b -> Value.compare (Tuple.get a i) (Tuple.get b i)) rows
  in
  let heap = Storage.create_heap t.storage schema in
  Heap_file.append_all heap rows;
  let tstats = Stats.analyze schema rows in
  let to_index =
    let pk_head = match pk with [] -> [] | c :: _ -> [ c ] in
    let clustered_col = match clustered with None -> [] | Some c -> [ c ] in
    List.sort_uniq String.compare (pk_head @ clustered_col @ index)
  in
  let indexes =
    List.map
      (fun cname ->
        let col = Schema.find_exn schema cname in
        (cname, Storage.build_index t.storage heap ~column:col))
      to_index
  in
  let tbl =
    { tname = name; tschema = schema; primary_key = pk; heap; indexes; tstats;
      clustered }
  in
  t.table_list <- t.table_list @ [ tbl ];
  bump_epoch t;
  tbl

let add_foreign_key t ~from:(ft, fc) ~refs:(pt, pc) =
  let ftbl = table_exn t ft and ptbl = table_exn t pt in
  let has_col tbl c = Schema.find tbl.tschema c <> None in
  if not (has_col ftbl fc) then
    invalid_arg (Printf.sprintf "add_foreign_key: %s has no column %s" ft fc);
  if not (has_col ptbl pc) then
    invalid_arg (Printf.sprintf "add_foreign_key: %s has no column %s" pt pc);
  if ptbl.primary_key <> [ pc ] then
    invalid_arg
      (Printf.sprintf "add_foreign_key: %s.%s is not the primary key" pt pc);
  t.fks <- { fk_table = ft; fk_column = fc; pk_table = pt; pk_column = pc } :: t.fks;
  bump_epoch t

let refresh_stats t =
  t.table_list <-
    List.map
      (fun tbl ->
        let rows = List.of_seq (Heap_file.to_seq tbl.heap) in
        { tbl with tstats = Stats.analyze tbl.tschema rows })
      t.table_list;
  bump_epoch t

let column_stats tbl cname =
  match Schema.find tbl.tschema cname with
  | None -> raise Not_found
  | Some i -> tbl.tstats.Stats.columns.(i)

let index_on tbl cname =
  List.assoc_opt cname tbl.indexes

let is_superkey tbl cols =
  tbl.primary_key <> []
  && List.for_all (fun k -> List.exists (String.equal k) cols) tbl.primary_key

let is_fk_join t ~from:(ft, fc) ~refs:(pt, pc) =
  List.exists
    (fun fk ->
      String.equal fk.fk_table ft && String.equal fk.fk_column fc
      && String.equal fk.pk_table pt && String.equal fk.pk_column pc)
    t.fks
