type io_op = Read | Write | Alloc

type t =
  | Io_fault of { op : io_op; file : int; page : int; attempts : int }
  | Corruption of { file : int; page : int; detail : string }
  | Resource_exceeded of { resource : string; limit : int; used : int }
  | Timeout of { limit_ms : float }
  | Cancelled
  | Bad_statement of string
  | Unavailable of string

exception Error of t

let error e = raise (Error e)

let io_op_label = function Read -> "read" | Write -> "write" | Alloc -> "alloc"

let kind_label = function
  | Io_fault _ -> "io-fault"
  | Corruption _ -> "corruption"
  | Resource_exceeded _ -> "resource-exceeded"
  | Timeout _ -> "timeout"
  | Cancelled -> "cancelled"
  | Bad_statement _ -> "bad-statement"
  | Unavailable _ -> "unavailable"

let to_string e =
  match e with
  | Io_fault { op; file; page; attempts } ->
    Printf.sprintf "kind=io-fault op=%s file=%d page=%d attempts=%d"
      (io_op_label op) file page attempts
  | Corruption { file; page; detail } ->
    Printf.sprintf "kind=corruption file=%d page=%d detail=%S" file page detail
  | Resource_exceeded { resource; limit; used } ->
    Printf.sprintf "kind=resource-exceeded resource=%s limit=%d used=%d"
      resource limit used
  | Timeout { limit_ms } -> Printf.sprintf "kind=timeout limit_ms=%g" limit_ms
  | Cancelled -> "kind=cancelled"
  | Bad_statement msg -> Printf.sprintf "kind=bad-statement detail=%S" msg
  | Unavailable msg -> Printf.sprintf "kind=unavailable detail=%S" msg

let pp ppf e = Format.pp_print_string ppf (to_string e)

let of_exn = function Error e -> Some e | _ -> None

let is_transient = function Io_fault _ -> true | _ -> false

(* Render [Error e] as its taxonomy line in uncaught-exception traces. *)
let () =
  Printexc.register_printer (function
    | Error e -> Some ("Avq_error.Error: " ^ to_string e)
    | _ -> None)
