(** Typed error taxonomy shared by every layer of the engine.

    Storage raises these for injected or detected IO problems, the executor
    raises them for exceeded budgets, and the service layer catches them so
    one failed statement degrades to an error {e result} instead of taking a
    worker (or the whole pool) down.  The taxonomy deliberately lives below
    [storage] in the dependency order so a fault can be typed at the exact
    layer where IO is measured. *)

type io_op = Read | Write | Alloc

type t =
  | Io_fault of { op : io_op; file : int; page : int; attempts : int }
      (** A (possibly injected) IO failure.  [attempts] is the number of
          tries made, so [attempts > 1] means bounded retry was exhausted. *)
  | Corruption of { file : int; page : int; detail : string }
      (** Structural damage detected: a page checksum mismatch, a dangling
          RID, or a violated index invariant.  Never retried. *)
  | Resource_exceeded of { resource : string; limit : int; used : int }
      (** A hard, enforced budget (e.g. the per-query temp-spill quota) was
          exceeded. *)
  | Timeout of { limit_ms : float }  (** The statement deadline passed. *)
  | Cancelled  (** The statement's cancellation token was set. *)
  | Bad_statement of string
      (** The statement itself is at fault (type error mid-execution,
          unresolvable column, malformed input). *)
  | Unavailable of string
      (** The server is not taking this work right now (draining for
          shutdown, connection limit reached).  Unlike
          {!Resource_exceeded} — which rejects one over-budget statement —
          this says the whole endpoint is (temporarily) closed to new
          work; clients should back off or reconnect elsewhere. *)

exception Error of t

val error : t -> 'a
(** [error e] raises {!Error}[ e]. *)

val io_op_label : io_op -> string

val kind_label : t -> string
(** Stable lowercase tag for counters and structured log lines:
    ["io-fault"], ["corruption"], ["resource-exceeded"], ["timeout"],
    ["cancelled"], ["bad-statement"], ["unavailable"]. *)

val to_string : t -> string
(** One-line rendering: [kind=<kind> <field>=<value>...], machine-grepable. *)

val pp : Format.formatter -> t -> unit

val of_exn : exn -> t option
(** Map an exception onto the taxonomy where a sound mapping exists:
    [Error e] gives [Some e]; anything else gives [None].  Unknown
    exceptions are deliberately not swallowed — the caller decides. *)

val is_transient : t -> bool
(** Only transient errors ([Io_fault]) are candidates for retry. *)
