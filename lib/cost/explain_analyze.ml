(* EXPLAIN ANALYZE: run a plan with per-operator profiling, then zip the
   executor's actuals back onto the plan tree next to the cost model's
   estimates, so cost-model error (q-error) is visible — and testable — per
   node.  The paper's claims are cost-based; this is where estimated and
   measured IO finally meet. *)

type node = {
  label : string;
  op : string;
  est : Cost_model.est;
  rows : int;
  pages : int;  (* actual inclusive page touches (reads+writes+hits) of the subtree *)
  ms : float;  (* inclusive wall time (open + pulls) *)
  batches : int;
  missing : bool;
  children : node list;
}

type t = {
  root : node;
  wall_ms : float;
  io : Buffer_pool.stats;
  error : string option;
}

(* q-error: multiplicative estimation error, symmetric in over / under
   estimation.  Both sides are clamped at 1 so empty results and zero-IO
   nodes don't blow up the ratio. *)
let q_error ~est ~actual =
  let e = Float.max est 1. and a = Float.max actual 1. in
  Float.max (e /. a) (a /. e)

let q_rows n = q_error ~est:n.est.Cost_model.rows ~actual:(float_of_int n.rows)

let q_pages n =
  q_error ~est:n.est.Cost_model.cost ~actual:(float_of_int n.pages)

(* Match plan children to profile children by operator name, in order.  The
   profile list is a subsequence of the plan list: a BNL join reopens its
   inner side with profiling suspended, so that child has no profile node —
   it renders as [missing] rather than stealing a sibling's counters. *)
let rec match_children plans profs =
  match plans with
  | [] -> []
  | p :: ps -> (
    match profs with
    | pr :: prs when pr.Profile.pname = Physical.op_name p ->
      (p, Some pr) :: match_children ps prs
    | _ -> (p, None) :: match_children ps profs)

let rec zip cat ~work_mem plan prof =
  let est = Cost_model.estimate cat ~work_mem plan in
  let pairs =
    match_children (Explain.children plan)
      (match prof with Some n -> Profile.children n | None -> [])
  in
  let children = List.map (fun (p, pr) -> zip cat ~work_mem p pr) pairs in
  match prof with
  | Some n ->
    {
      label = Explain.node_label plan;
      op = Physical.op_name plan;
      est;
      rows = n.Profile.rows_out;
      pages = Profile.total_touches n;
      ms = Profile.total_ms n;
      batches = n.Profile.batches;
      missing = false;
      children;
    }
  | None ->
    {
      label = Explain.node_label plan;
      op = Physical.op_name plan;
      est;
      rows = 0;
      pages = 0;
      ms = 0.;
      batches = 0;
      missing = true;
      children;
    }

let of_profile cat ~work_mem plan ~io ~wall_ms prof =
  let root =
    match Profile.roots prof with
    | r :: _ -> zip cat ~work_mem plan (Some r)
    | [] -> zip cat ~work_mem plan None
  in
  { root; wall_ms; io; error = Profile.error prof }

let analyze ?cold ?executor ctx plan =
  let cat = Exec_ctx.catalog ctx in
  let work_mem = Exec_ctx.work_mem ctx in
  let t0 = Unix.gettimeofday () in
  match Executor.run_profiled_result ?cold ?executor ctx plan with
  | Ok (rel, io, prof) ->
    let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    (Ok rel, of_profile cat ~work_mem plan ~io ~wall_ms prof)
  | Error (e, prof) ->
    let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    let io = { Buffer_pool.reads = 0; writes = 0; hits = 0 } in
    (Error e, of_profile cat ~work_mem plan ~io ~wall_ms prof)

let nodes t =
  let rec go acc n = List.fold_left go (n :: acc) n.children in
  List.rev (go [] t.root)

let pp ppf t =
  let rec go indent n =
    if n.missing then
      Format.fprintf ppf "%s%-26s (est rows=%.0f io=%.1f) (actual: not profiled)@\n"
        (String.make indent ' ') n.label n.est.Cost_model.rows
        n.est.Cost_model.cost
    else
      Format.fprintf ppf
        "%s%-26s (est rows=%.0f io=%.1f) (act rows=%d pages=%d ms=%.2f) \
         q_rows=%.2f q_pages=%.2f@\n"
        (String.make indent ' ') n.label n.est.Cost_model.rows
        n.est.Cost_model.cost n.rows n.pages n.ms (q_rows n) (q_pages n);
    List.iter (go (indent + 2)) n.children
  in
  go 0 t.root;
  (match t.error with
   | Some msg -> Format.fprintf ppf "Execution: FAILED (partial stats): %s@\n" msg
   | None -> ());
  Format.fprintf ppf "Execution: %.2f ms, io reads=%d writes=%d hits=%d@\n"
    t.wall_ms t.io.Buffer_pool.reads t.io.Buffer_pool.writes
    t.io.Buffer_pool.hits

let to_string t = Format.asprintf "%a" pp t
