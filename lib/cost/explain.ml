let node_label = function
  | Physical.Seq_scan s ->
    Printf.sprintf "SeqScan %s AS %s" (Physical.display_table s.table) s.alias
  | Physical.Index_scan s ->
    Printf.sprintf "IndexScan %s AS %s on %s" (Physical.display_table s.table)
      s.alias s.column
  | Physical.Filter _ -> "Filter"
  | Physical.Block_nl_join _ -> "BNLJoin"
  | Physical.Index_nl_join j ->
    Printf.sprintf "IndexNLJoin %s AS %s on %s" (Physical.display_table j.table)
      j.alias j.column
  | Physical.Hash_join _ -> "HashJoin"
  | Physical.Merge_join _ -> "MergeJoin"
  | Physical.Sort _ -> "Sort"
  | Physical.Hash_group _ -> "HashGroup"
  | Physical.Sort_group _ -> "SortGroup"
  | Physical.Project _ -> "Project"
  | Physical.Materialize _ -> "Materialize"
  | Physical.Limit l -> Printf.sprintf "Limit %d" l.count
  | Physical.Exchange e -> Printf.sprintf "Exchange dop=%d" e.dop
  | Physical.Repartition r -> Printf.sprintf "Repartition dop=%d" r.dop

let children = Physical.inputs

let pp cat ~work_mem ppf plan =
  let rec go indent node =
    let est = Cost_model.estimate cat ~work_mem node in
    Format.fprintf ppf "%s%-24s (rows=%.0f pages=%.0f cost=%.1f)@\n"
      (String.make indent ' ') (node_label node) est.Cost_model.rows
      est.Cost_model.pages est.Cost_model.cost;
    List.iter (go (indent + 2)) (children node)
  in
  go 0 plan

let to_string cat ~work_mem plan = Format.asprintf "%a" (pp cat ~work_mem) plan
