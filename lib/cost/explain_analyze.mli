(** EXPLAIN ANALYZE: estimated vs actual, per plan node.

    Runs a plan with per-operator profiling and zips the executor's measured
    rows, page IO and wall time back onto the plan tree next to the cost
    model's estimates.  The per-node {e q-error} — [max(est/actual,
    actual/est)], both sides clamped at 1 — makes cost-model accuracy a
    first-class, testable quantity.

    Estimated IO per node is the model's {e cumulative} cost
    ({!Cost_model.est.cost}); the matching actual is the node's inclusive
    subtree page {e touches} — reads + writes + pool hits
    ({!Profile.total_touches}).  The model has no caching notion (it prices
    every page access), so touches, not physical reads, are the comparable
    actual; the comparison is then stable whether the pool is cold or warm.
    Use [~cold:true] when the statement IO footer should show physical
    reads.  Index scans carry a structurally large [q_pages]: the model
    caps unclustered fetches at the table's page count (assuming the pool
    absorbs revisits) while touches count every heap access. *)

type node = {
  label : string;  (** {!Explain.node_label} *)
  op : string;  (** {!Physical.op_name} *)
  est : Cost_model.est;
  rows : int;  (** actual rows out *)
  pages : int;  (** actual inclusive page touches (reads+writes+hits) of the subtree *)
  ms : float;  (** inclusive wall time: open (blocking work) + pulls *)
  batches : int;
  missing : bool;
      (** no profile node matched this plan node (e.g. the rescanned inner
          of a BNL join, opened with profiling suspended) *)
  children : node list;
}

type t = {
  root : node;
  wall_ms : float;  (** whole-statement execution wall time *)
  io : Buffer_pool.stats;  (** statement IO delta (zero if the run failed) *)
  error : string option;  (** set when the run failed: stats are partial *)
}

val q_error : est:float -> actual:float -> float
val q_rows : node -> float
val q_pages : node -> float

val analyze :
  ?cold:bool ->
  ?executor:Executor.engine ->
  Exec_ctx.t ->
  Physical.t ->
  (Relation.t, exn) result * t
(** Run the plan under profiling and build the annotated tree.  On failure
    the tree carries the partial actuals and [error] is set.  [cold]
    (default false) empties the buffer pool first. *)

val of_profile :
  Catalog.t ->
  work_mem:int ->
  Physical.t ->
  io:Buffer_pool.stats ->
  wall_ms:float ->
  Profile.t ->
  t
(** Zip an already-collected profile onto a plan (used by the service,
    which runs the statement itself). *)

val nodes : t -> node list
(** All nodes, preorder. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
