type est = { rows : float; width : int; pages : float; cost : float }

let pages_of ~rows ~width =
  if rows <= 0. then 0.
  else
    let cap = float_of_int (Page.capacity ~row_bytes:width) in
    Float.max 1. (Float.round (Float.ceil (rows /. cap)))

let cardenas ~n ~d =
  if d <= 1. then Float.min 1. n
  else if n <= 0. then 0.
  else d *. (1. -. ((1. -. (1. /. d)) ** n))

let group_rows env ~input_rows keys =
  if keys = [] then Float.min 1. input_rows
  else
    let d =
      List.fold_left
        (fun acc k -> acc *. Selectivity.ndv env k ~rows:input_rows)
        1. keys
    in
    let d = Float.min d 1e15 in
    Float.max 1. (cardenas ~n:input_rows ~d)

(* ---- plan-aware NDV of grouping columns ----

   The naive product-of-NDVs estimate badly overestimates group counts when
   the grouping columns are join keys (equalities make them one attribute)
   or are functionally determined by a primary key that is itself among the
   keys.  We refine it with three standard devices:
   - equivalence classes induced by the equi-join predicates of the subplan;
   - per-column NDV capped by the (filtered) cardinality of the scan the
     column comes from;
   - FD reduction: if a relation's full primary key is among the grouping
     columns, its other columns contribute no further groups. *)

let same_col (a : Schema.column) (b : Schema.column) =
  String.equal a.Schema.cqual b.Schema.cqual && String.equal a.Schema.cname b.Schema.cname

let rec equi_pairs = function
  | Physical.Block_nl_join j ->
    List.filter_map Expr.as_equijoin j.cond @ equi_pairs j.left @ equi_pairs j.right
  | Physical.Hash_join j -> j.keys @ equi_pairs j.left @ equi_pairs j.right
  | Physical.Merge_join j -> j.keys @ equi_pairs j.left @ equi_pairs j.right
  | Physical.Index_nl_join j ->
    let tbl_col ty = Schema.column ~qual:j.alias j.column ty in
    (j.outer_key, tbl_col j.outer_key.Schema.cty)
    :: (List.filter_map Expr.as_equijoin j.cond @ equi_pairs j.left)
  | Physical.Filter f -> equi_pairs f.input
  | Physical.Sort s -> equi_pairs s.input
  | Physical.Project p -> equi_pairs p.input
  | Physical.Materialize m -> equi_pairs m.input
  | Physical.Hash_group g | Physical.Sort_group g -> equi_pairs g.input
  | Physical.Limit l -> equi_pairs l.input
  | Physical.Exchange e -> equi_pairs e.input
  | Physical.Repartition r -> equi_pairs r.input
  | Physical.Seq_scan _ | Physical.Index_scan _ -> []

(* Estimated post-filter cardinality of the scan providing [alias]. *)
let rec scan_rows cat env alias = function
  | Physical.Seq_scan s when String.equal s.alias alias ->
    let tbl = Catalog.table_exn cat s.table in
    Some (float_of_int tbl.Catalog.tstats.Stats.card *. Selectivity.preds env s.filter)
  | Physical.Index_scan s when String.equal s.alias alias ->
    let tbl = Catalog.table_exn cat s.table in
    let card = float_of_int tbl.Catalog.tstats.Stats.card in
    let frac =
      match (try Some (Catalog.column_stats tbl s.column) with Not_found -> None) with
      | Some cs -> Histogram.sel_range cs.Stats.histogram ?lo:s.lo ?hi:s.hi ()
      | None -> Selectivity.default_range
    in
    Some (card *. frac *. Selectivity.preds env s.filter)
  | Physical.Index_nl_join j when String.equal j.alias alias ->
    let tbl = Catalog.table_exn cat j.table in
    Some (float_of_int tbl.Catalog.tstats.Stats.card)
  | Physical.Seq_scan _ | Physical.Index_scan _ -> None
  | Physical.Block_nl_join j ->
    (match scan_rows cat env alias j.left with
     | Some r -> Some r
     | None -> scan_rows cat env alias j.right)
  | Physical.Hash_join j ->
    (match scan_rows cat env alias j.left with
     | Some r -> Some r
     | None -> scan_rows cat env alias j.right)
  | Physical.Merge_join j ->
    (match scan_rows cat env alias j.left with
     | Some r -> Some r
     | None -> scan_rows cat env alias j.right)
  | Physical.Index_nl_join j -> scan_rows cat env alias j.left
  | Physical.Filter f -> scan_rows cat env alias f.input
  | Physical.Sort s -> scan_rows cat env alias s.input
  | Physical.Project p -> scan_rows cat env alias p.input
  | Physical.Materialize m -> scan_rows cat env alias m.input
  | Physical.Hash_group g | Physical.Sort_group g -> scan_rows cat env alias g.input
  | Physical.Limit l -> scan_rows cat env alias l.input
  | Physical.Exchange e -> scan_rows cat env alias e.input
  | Physical.Repartition r -> scan_rows cat env alias r.input

let group_rows_in_plan cat env ~input_rows input keys =
  if keys = [] then Float.min 1. input_rows
  else begin
    (* FD reduction: drop non-PK columns of relations whose full PK is in
       the keys. *)
    let aliases = Physical.relations input in
    let pk_covered_alias alias =
      match List.assoc_opt alias aliases with
      | None -> false
      | Some table ->
        let pk = (Catalog.table_exn cat table).Catalog.primary_key in
        pk <> []
        && List.for_all
             (fun p ->
               List.exists
                 (fun (k' : Schema.column) ->
                   String.equal k'.Schema.cqual alias
                   && String.equal k'.Schema.cname p)
                 keys)
             pk
    in
    let keys =
      List.filter
        (fun (k : Schema.column) ->
          match List.assoc_opt k.Schema.cqual aliases with
          | None -> true
          | Some table ->
            let pk = (Catalog.table_exn cat table).Catalog.primary_key in
            (not (pk_covered_alias k.Schema.cqual))
            || List.exists (String.equal k.Schema.cname) pk)
        keys
    in
    (* Key shortcut: if some relation's full PK is among the keys and the
       input has no more rows than that relation contributes, every input
       row is its own group (Cardenas would underestimate by 1 - 1/e). *)
    let key_preserved =
      List.exists
        (fun (k : Schema.column) ->
          pk_covered_alias k.Schema.cqual
          &&
          match scan_rows cat env k.Schema.cqual input with
          | Some r -> input_rows <= r *. 1.05
          | None -> false)
        keys
    in
    if key_preserved then Float.max 1. input_rows
    else
    (* Equivalence classes from the subplan's equi-joins. *)
    let pairs = equi_pairs input in
    let classes : Schema.column list list ref = ref [] in
    let class_of c = List.find_opt (List.exists (same_col c)) !classes in
    let add_col c =
      if class_of c = None then classes := [ c ] :: !classes
    in
    List.iter
      (fun (a, b) ->
        add_col a;
        add_col b;
        let ca = Option.get (class_of a) and cb = Option.get (class_of b) in
        if ca != cb then
          classes := (ca @ cb) :: List.filter (fun cl -> cl != ca && cl != cb) !classes)
      pairs;
    List.iter add_col keys;
    let col_ndv (c : Schema.column) =
      let base = Selectivity.ndv env c ~rows:input_rows in
      match scan_rows cat env c.Schema.cqual input with
      | Some r -> Float.min base (Float.max 1. r)
      | None -> base
    in
    let class_ndv cls =
      List.fold_left (fun acc c -> Float.min acc (col_ndv c)) infinity cls
    in
    (* One factor per distinct class among the keys. *)
    let seen : Schema.column list list ref = ref [] in
    let d =
      List.fold_left
        (fun acc k ->
          let cls = Option.get (class_of k) in
          if List.exists (fun c -> c == cls) !seen then acc
          else begin
            seen := cls :: !seen;
            acc *. class_ndv cls
          end)
        1. keys
    in
    let d = Float.min (Float.min d 1e15) (Float.max 1. input_rows) in
    Float.max 1. (cardenas ~n:input_rows ~d)
  end

let plan_aware_grouping = ref true

(* Parallel-fraction cost model for [Exchange] (see its [est_node] case). *)
let parallel_fraction = 0.85
let exchange_startup_cost = 4.0

let index_entry_bytes = 16  (* key + rid per leaf entry *)

(* Number of merge passes external sort needs for [pages] of data. *)
let sort_passes ~work_mem pages =
  if pages <= float_of_int work_mem then 0.
  else begin
    let fanin = float_of_int (max 2 (work_mem - 1)) in
    let runs = Float.ceil (pages /. float_of_int work_mem) in
    Float.max 1. (Float.ceil (log runs /. log fanin))
  end

let rec estimate cat ~work_mem plan =
  let env = Selectivity.of_aliases cat (Physical.relations plan) in
  est_node cat env ~work_mem plan

and est_node cat env ~work_mem plan =
  let recur p = est_node cat env ~work_mem p in
  let m = float_of_int work_mem in
  match plan with
  | Physical.Seq_scan s ->
    let tbl = Catalog.table_exn cat s.table in
    let card = float_of_int tbl.Catalog.tstats.Stats.card in
    let rows = card *. Selectivity.preds env s.filter in
    let width = tbl.Catalog.tstats.Stats.row_bytes in
    {
      rows;
      width;
      pages = pages_of ~rows ~width;
      cost = float_of_int tbl.Catalog.tstats.Stats.pages;
    }
  | Physical.Index_scan s ->
    let tbl = Catalog.table_exn cat s.table in
    let stats = tbl.Catalog.tstats in
    let card = float_of_int stats.Stats.card in
    let heap_pages = float_of_int stats.Stats.pages in
    let frac =
      match (try Some (Catalog.column_stats tbl s.column) with Not_found -> None) with
      | Some cs -> Histogram.sel_range cs.Stats.histogram ?lo:s.lo ?hi:s.hi ()
      | None -> Selectivity.default_range
    in
    let matched = card *. frac in
    let entries_per_page = float_of_int (Page.size / index_entry_bytes) in
    let leaf_pages = Float.max 1. (Float.ceil (card /. entries_per_page)) in
    let height = Float.max 1. (Float.ceil (log (Float.max 2. leaf_pages) /. log entries_per_page)) +. 1. in
    let clustered =
      match tbl.Catalog.clustered with
      | Some c -> String.equal c s.column
      | None -> false
    in
    let heap_fetch =
      if clustered then Float.ceil (frac *. heap_pages)
      else Float.min matched heap_pages
    in
    let rows = matched *. Selectivity.preds env s.filter in
    let width = stats.Stats.row_bytes in
    {
      rows;
      width;
      pages = pages_of ~rows ~width;
      cost = height +. Float.ceil (frac *. leaf_pages) +. heap_fetch;
    }
  | Physical.Filter f ->
    let e = recur f.input in
    let rows = e.rows *. Selectivity.preds env f.pred in
    { e with rows; pages = pages_of ~rows ~width:e.width }
  | Physical.Project p ->
    let e = recur p.input in
    let width =
      List.fold_left
        (fun acc (_, c) -> acc + Datatype.byte_width c.Schema.cty)
        0 p.cols
    in
    { e with width; pages = pages_of ~rows:e.rows ~width }
  | Physical.Materialize mt ->
    let e = recur mt.input in
    { e with cost = e.cost +. e.pages }
  | Physical.Limit l ->
    let e = recur l.input in
    let rows = Float.min e.rows (float_of_int l.count) in
    { e with rows; pages = pages_of ~rows ~width:e.width }
  | Physical.Sort s ->
    let e = recur s.input in
    let passes = sort_passes ~work_mem e.pages in
    { e with cost = e.cost +. (2. *. e.pages *. passes) }
  | Physical.Block_nl_join j ->
    let l = recur j.left and r = recur j.right in
    let nblocks = Float.max 1. (Float.ceil (l.pages /. Float.max 1. (m -. 1.))) in
    let rescan =
      match j.right with
      | Physical.Materialize _ -> r.pages
      | Physical.Seq_scan _ | Physical.Index_scan _ -> r.cost
      | _ -> r.cost
    in
    let first =
      match j.right with Physical.Materialize _ -> r.cost | _ -> 0.
    in
    let rows = l.rows *. r.rows *. Selectivity.preds env j.cond in
    let width = l.width + r.width in
    {
      rows;
      width;
      pages = pages_of ~rows ~width;
      cost = l.cost +. first +. (nblocks *. rescan);
    }
  | Physical.Index_nl_join j ->
    let l = recur j.left in
    let tbl = Catalog.table_exn cat j.table in
    let stats = tbl.Catalog.tstats in
    let card = float_of_int stats.Stats.card in
    let col_ndv =
      match (try Some (Catalog.column_stats tbl j.column) with Not_found -> None) with
      | Some cs -> float_of_int cs.Stats.ndv
      | None -> Float.max 1. (card /. 10.)
    in
    let matches = card /. Float.max 1. col_ndv in
    let entries_per_page = float_of_int (Page.size / index_entry_bytes) in
    let leaf_pages = Float.max 1. (Float.ceil (card /. entries_per_page)) in
    let height = Float.max 1. (Float.ceil (log (Float.max 2. leaf_pages) /. log entries_per_page)) +. 1. in
    let clustered =
      match tbl.Catalog.clustered with
      | Some c -> String.equal c j.column
      | None -> false
    in
    let heap_fetch =
      if clustered then
        let cap = float_of_int (Page.capacity ~row_bytes:stats.Stats.row_bytes) in
        Float.ceil (matches /. cap)
      else matches
    in
    let per_probe = height +. Float.max 1. heap_fetch in
    let rows = l.rows *. matches *. Selectivity.preds env j.cond in
    let width = l.width + stats.Stats.row_bytes in
    {
      rows;
      width;
      pages = pages_of ~rows ~width;
      cost = l.cost +. (l.rows *. per_probe);
    }
  | Physical.Hash_join j ->
    let l = recur j.left and r = recur j.right in
    let build = match j.build_side with `Left -> l | `Right -> r in
    let spill = if build.pages > m then 2. *. (l.pages +. r.pages) else 0. in
    let key_sel =
      List.fold_left
        (fun acc (a, b) ->
          let da = Selectivity.ndv env a ~rows:l.rows in
          let db = Selectivity.ndv env b ~rows:r.rows in
          acc /. Float.max 1. (Float.max da db))
        1. j.keys
    in
    let rows = l.rows *. r.rows *. key_sel *. Selectivity.preds env j.cond in
    let width = l.width + r.width in
    {
      rows;
      width;
      pages = pages_of ~rows ~width;
      cost = l.cost +. r.cost +. spill;
    }
  | Physical.Merge_join j ->
    let l = recur j.left and r = recur j.right in
    let key_sel =
      List.fold_left
        (fun acc (a, b) ->
          let da = Selectivity.ndv env a ~rows:l.rows in
          let db = Selectivity.ndv env b ~rows:r.rows in
          acc /. Float.max 1. (Float.max da db))
        1. j.keys
    in
    let rows = l.rows *. r.rows *. key_sel *. Selectivity.preds env j.cond in
    let width = l.width + r.width in
    { rows; width; pages = pages_of ~rows ~width; cost = l.cost +. r.cost }
  | Physical.Hash_group g | Physical.Sort_group g ->
    let e = recur g.input in
    let groups =
      if !plan_aware_grouping then
        group_rows_in_plan cat env ~input_rows:e.rows g.input g.keys
      else group_rows env ~input_rows:e.rows g.keys
    in
    let rows = groups *. Selectivity.preds env g.having in
    let width =
      List.fold_left (fun acc k -> acc + Datatype.byte_width k.Schema.cty) 0 g.keys
      + List.fold_left
          (fun acc a -> acc + Datatype.byte_width (Aggregate.result_type a))
          0 g.aggs
    in
    { rows; width; pages = pages_of ~rows ~width; cost = e.cost }
  | Physical.Exchange x ->
    let e = recur x.input in
    let d = float_of_int (max 1 x.dop) in
    (* Amdahl parallel-fraction model: a fraction [parallel_fraction] of the
       input's work divides across [dop] workers; the rest (build sides,
       merge phase, queue hand-off) stays serial.  Each worker pays a fixed
       startup toll (domain spawn + context fork), so small plans cost MORE
       through the exchange than serially — exactly the signal the
       optimizer's threshold gate keys on. *)
    let cost =
      (exchange_startup_cost *. d)
      +. (((parallel_fraction /. d) +. (1. -. parallel_fraction)) *. e.cost)
    in
    { e with cost }
  | Physical.Repartition r ->
    (* The build rows are materialized once either way; hashing them into
       dop partitions is CPU work the page-IO model does not count. *)
    recur r.input

let pp_est ppf e =
  Format.fprintf ppf "rows=%.1f width=%dB pages=%.1f cost=%.1f" e.rows e.width
    e.pages e.cost
