(** Annotated plan rendering: every node with its estimated rows, pages and
    cumulative IO cost (the EXPLAIN of this engine). *)

val node_label : Physical.t -> string
(** Verbose node label ("SeqScan emp AS e", "Limit 10", ...). *)

val children : Physical.t -> Physical.t list
(** Alias for {!Physical.inputs}; shared by {!Explain_analyze}. *)

val pp : Catalog.t -> work_mem:int -> Format.formatter -> Physical.t -> unit

val to_string : Catalog.t -> work_mem:int -> Physical.t -> string
