type params = {
  days : int;
  products : int;
  stores : int;
  rows_per_day : int;
  seed : int;
  frames : int;
}

let default_params =
  { days = 90; products = 400; stores = 20; rows_per_day = 150; seed = 77; frames = 256 }

let load ?(params = default_params) () =
  let rng = Rng.create ~seed:params.seed in
  let cat = Catalog.create ~frames:params.frames () in
  let dates =
    List.init params.days (fun d ->
        Tuple.make [ Value.Int d; Value.Int (d / 30); Value.Int (2026 + (d / 360)) ])
  in
  ignore
    (Catalog.add_table cat ~name:"dates"
       ~columns:[ ("day", Datatype.Int); ("month", Datatype.Int); ("year", Datatype.Int) ]
       ~pk:[ "day" ] dates);
  let products =
    List.init params.products (fun p ->
        Tuple.make
          [ Value.Int p; Value.Int (Rng.int rng 12); Value.Int (Rng.in_range rng 5 500) ])
  in
  ignore
    (Catalog.add_table cat ~name:"product"
       ~columns:
         [ ("prod", Datatype.Int); ("category", Datatype.Int); ("price", Datatype.Int) ]
       ~pk:[ "prod" ] ~index:[ "category" ] products);
  let stores =
    List.init params.stores (fun s ->
        Tuple.make [ Value.Int s; Value.Int (Rng.int rng 5) ])
  in
  ignore
    (Catalog.add_table cat ~name:"store"
       ~columns:[ ("store", Datatype.Int); ("region", Datatype.Int) ]
       ~pk:[ "store" ] stores);
  let nrows = params.days * params.rows_per_day in
  let sales =
    List.init nrows (fun i ->
        let qty = Rng.in_range rng 1 20 in
        Tuple.make
          [
            Value.Int i;
            Value.Int (Rng.zipf rng ~n:params.days ~theta:0.3);
            Value.Int (Rng.zipf rng ~n:params.products ~theta:0.8);
            Value.Int (Rng.int rng params.stores);
            Value.Int qty;
            Value.Int (qty * Rng.in_range rng 5 500);
          ])
  in
  ignore
    (Catalog.add_table cat ~name:"sales"
       ~columns:
         [ ("sk", Datatype.Int); ("day", Datatype.Int); ("prod", Datatype.Int);
           ("store", Datatype.Int); ("qty", Datatype.Int); ("amount", Datatype.Int) ]
       ~pk:[ "sk" ] ~index:[ "day"; "prod"; "store" ] ~cluster:"prod" sales);
  Catalog.add_foreign_key cat ~from:("sales", "day") ~refs:("dates", "day");
  Catalog.add_foreign_key cat ~from:("sales", "prod") ~refs:("product", "prod");
  Catalog.add_foreign_key cat ~from:("sales", "store") ~refs:("store", "store");
  cat

let icol ~qual name = Schema.column ~qual name Datatype.Int

let q_category_revenue ?(category = 3) () =
  let revenue =
    Aggregate.make Aggregate.Sum ~arg:(Expr.Col (icol ~qual:"f" "amount")) "revenue"
  in
  {
    Block.q_views = [];
    q_rels =
      [
        { Block.r_alias = "f"; r_table = "sales" };
        { Block.r_alias = "d"; r_table = "dates" };
        { Block.r_alias = "p"; r_table = "product" };
      ];
    q_preds =
      [
        Expr.Cmp (Expr.Eq, Expr.Col (icol ~qual:"f" "day"), Expr.Col (icol ~qual:"d" "day"));
        Expr.Cmp (Expr.Eq, Expr.Col (icol ~qual:"f" "prod"), Expr.Col (icol ~qual:"p" "prod"));
        Expr.Cmp (Expr.Eq, Expr.Col (icol ~qual:"p" "category"), Expr.int category);
      ];
    q_grouped = true;
    q_keys = [ icol ~qual:"d" "month" ];
    q_aggs = [ revenue ];
    q_having = [];
    q_select =
      [ Block.Sel_col (icol ~qual:"d" "month", "month"); Block.Sel_agg revenue ];
    q_order = [ ("month", false) ];
    q_limit = None;
  }

let q_above_average_products ?(region = 2) () =
  let avg_qty =
    Aggregate.make Aggregate.Avg ~arg:(Expr.Col (icol ~qual:"f2" "qty")) "avgqty"
  in
  let view =
    {
      Block.v_alias = "v";
      v_rels = [ { Block.r_alias = "f2"; r_table = "sales" } ];
      v_preds = [];
      v_keys = [ icol ~qual:"f2" "prod" ];
      v_aggs = [ avg_qty ];
      v_having = [];
      v_out = [ Block.Out_key (icol ~qual:"f2" "prod", "prod"); Block.Out_agg avg_qty ];
    }
  in
  {
    Block.q_views = [ view ];
    q_rels =
      [
        { Block.r_alias = "f"; r_table = "sales" };
        { Block.r_alias = "s"; r_table = "store" };
      ];
    q_preds =
      [
        Expr.Cmp
          (Expr.Eq, Expr.Col (icol ~qual:"f" "store"), Expr.Col (icol ~qual:"s" "store"));
        Expr.Cmp
          (Expr.Eq, Expr.Col (icol ~qual:"f" "prod"),
           Expr.Col (Schema.column ~qual:"v" "prod" Datatype.Int));
        Expr.Cmp (Expr.Eq, Expr.Col (icol ~qual:"s" "region"), Expr.int region);
        Expr.Cmp
          ( Expr.Gt,
            Expr.Col (icol ~qual:"f" "qty"),
            Expr.Col (Schema.column ~qual:"v" "avgqty" Datatype.Float) );
      ];
    q_grouped = false;
    q_keys = [];
    q_aggs = [];
    q_having = [];
    q_select =
      [
        Block.Sel_col (icol ~qual:"f" "sk", "sk");
        Block.Sel_col (icol ~qual:"f" "prod", "prod");
        Block.Sel_col (icol ~qual:"f" "qty", "qty");
      ];
    q_order = [];
    q_limit = None;
  }
