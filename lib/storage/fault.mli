(** Deterministic, scriptable fault plans for the storage layer.

    A plan is a list of rules matched against every buffer-pool operation
    (read / write / alloc, including temp-file pages).  The first rule that
    both {e matches} the operation (op kind, file, page) and {e triggers}
    (probabilistically, every-nth, or at scheduled op counts) decides the
    outcome: a typed {!Avq_error.Io_fault} or a simulated checksum
    {!Avq_error.Corruption}.

    Probabilistic rules are seeded and counter-indexed — the decision for
    the [n]-th matching operation is a pure hash of [(seed, rule, n)] — so a
    single-threaded replay of the same plan faults at exactly the same
    operations every run.

    Spec grammar (entries separated by [;]):
    {v
      seed=<int>              plan-wide RNG seed (default 0)
      retries=<int>           max read retries storage may spend per page
      jitter=<float>          backoff jitter fraction in [0,1] (default 0)
      <target>:<opt>,<opt>..  one rule
    v}
    where [<target>] is [read], [write], [alloc], [io] (any op) or
    [corrupt] (reads report checksum corruption instead of an IO fault),
    and each [<opt>] is one of [p=<float>] (per-op fault probability),
    [every=<n>] (every nth matching op), [at=<n>+<n>+..] (scheduled matching
    op counts, 1-based), [file=<f>], [page=<p>] (restrict the match; a rule
    with only [file]/[page] restrictions is persistent — it always
    triggers). *)

type op = Read | Write | Alloc

type action = Fail | Corrupt

type rule = {
  rop : op option;  (** [None] matches any op *)
  raction : action;
  rfile : int option;
  rpage : int option;
  rprob : float;  (** 0. = not probabilistic *)
  revery : int option;
  rat : int list;
}

type t

val make : ?seed:int -> ?retries:int -> ?jitter:float -> rule list -> t
(** [retries] (default 0) bounds storage-side read retries; [jitter]
    (default 0, in [0,1]) is the fraction by which retry backoff is
    randomized — seeded and reproducible; see
    {!Buffer_pool.read_retrying} and {!Buffer_pool.backoff_spins}. *)

val rule :
  ?op:op -> ?action:action -> ?file:int -> ?page:int -> ?p:float ->
  ?every:int -> ?at:int list -> unit -> rule

val seed : t -> int
val retries : t -> int

val jitter : t -> float
(** Backoff jitter fraction; 0 restores the fully deterministic spin
    schedule. *)

val rules : t -> rule list

val hash_unit : int -> int -> int -> float
(** [hash_unit seed idx n] — the plan's stateless avalanche hash to a float
    in [0,1).  Exposed so backoff jitter (and tests) can derive
    reproducible per-(worker, attempt) draws from the same stream the
    trigger decisions use. *)

val injected : t -> int
(** Total faults this plan has injected (both actions). *)

val check : t -> op:op -> file:int -> page:int -> action option
(** Consult the plan for one operation.  Bumps the per-rule match counters;
    returns the action of the first triggering rule, if any. *)

val parse : string -> (t, string) result
(** Parse the spec grammar above. *)

val to_string : t -> string
(** Canonical spec rendering ([parse (to_string t)] is equivalent to [t],
    modulo counters). *)
