type key = int * int

type frame = {
  key : key;
  mutable dirty : bool;
  mutable prev : frame option;
  mutable next : frame option;
}

type stats = { reads : int; writes : int; hits : int }

(* Per-domain IO tally.  Every counted event bumps both the pool's global
   (atomic) counters and the calling domain's tally.  A domain executes one
   query at a time, so the tally's growth over a window is exactly the IO
   that domain's query incurred — concurrent workers never perturb each
   other's measurement, unlike a shared reset-then-read counter. *)
module Tally = struct
  type c = { mutable treads : int; mutable twrites : int; mutable thits : int }

  let key = Domain.DLS.new_key (fun () -> { treads = 0; twrites = 0; thits = 0 })
  let get () = Domain.DLS.get key
end

type t = {
  capacity : int;
  lock : Mutex.t;
  table : (key, frame) Hashtbl.t;
  mutable head : frame option;  (* most recently used *)
  mutable tail : frame option;  (* least recently used *)
  reads : int Atomic.t;
  writes : int Atomic.t;
  hits : int Atomic.t;
}

(* [Mutex.protect] exists only since OCaml 5.1; the package claims >= 5.0. *)
let protect m f =
  Mutex.lock m;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception e ->
    Mutex.unlock m;
    raise e

let create ~frames =
  if frames < 1 then invalid_arg "Buffer_pool.create: frames < 1";
  {
    capacity = frames;
    lock = Mutex.create ();
    table = Hashtbl.create (2 * frames);
    head = None;
    tail = None;
    reads = Atomic.make 0;
    writes = Atomic.make 0;
    hits = Atomic.make 0;
  }

let frames t = t.capacity

let count_read t =
  Atomic.incr t.reads;
  let c = Tally.get () in
  c.Tally.treads <- c.Tally.treads + 1

let count_write t =
  Atomic.incr t.writes;
  let c = Tally.get () in
  c.Tally.twrites <- c.Tally.twrites + 1

let count_hit t =
  Atomic.incr t.hits;
  let c = Tally.get () in
  c.Tally.thits <- c.Tally.thits + 1

let unlink t f =
  (match f.prev with Some p -> p.next <- f.next | None -> t.head <- f.next);
  (match f.next with Some n -> n.prev <- f.prev | None -> t.tail <- f.prev);
  f.prev <- None;
  f.next <- None

let push_front t f =
  f.next <- t.head;
  f.prev <- None;
  (match t.head with Some h -> h.prev <- Some f | None -> t.tail <- Some f);
  t.head <- Some f

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some f ->
    unlink t f;
    Hashtbl.remove t.table f.key;
    if f.dirty then count_write t

let insert t key ~dirty =
  if Hashtbl.length t.table >= t.capacity then evict_lru t;
  let f = { key; dirty; prev = None; next = None } in
  Hashtbl.replace t.table key f;
  push_front t f

let touch t key ~dirty =
  match Hashtbl.find_opt t.table key with
  | Some f ->
    count_hit t;
    if dirty then f.dirty <- true;
    unlink t f;
    push_front t f;
    true
  | None -> false

let read t ~file ~page =
  protect t.lock (fun () ->
      let key = (file, page) in
      if not (touch t key ~dirty:false) then begin
        count_read t;
        insert t key ~dirty:false
      end)

let write t ~file ~page =
  protect t.lock (fun () ->
      let key = (file, page) in
      if not (touch t key ~dirty:true) then begin
        count_read t;
        insert t key ~dirty:true
      end)

let alloc t ~file ~page =
  protect t.lock (fun () ->
      let key = (file, page) in
      if not (touch t key ~dirty:true) then insert t key ~dirty:true)

let drop_file t ~file =
  protect t.lock (fun () ->
      let doomed =
        Hashtbl.fold
          (fun (f, p) fr acc -> if f = file then (fr, p) :: acc else acc)
          t.table []
      in
      List.iter
        (fun (fr, _p) ->
          unlink t fr;
          Hashtbl.remove t.table fr.key)
        doomed)

let flush_all t =
  protect t.lock (fun () ->
      Hashtbl.iter
        (fun _ f ->
          if f.dirty then begin
            f.dirty <- false;
            count_write t
          end)
        t.table)

let clear t =
  protect t.lock (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None)

let stats t =
  { reads = Atomic.get t.reads; writes = Atomic.get t.writes;
    hits = Atomic.get t.hits }

let reset_stats t =
  Atomic.set t.reads 0;
  Atomic.set t.writes 0;
  Atomic.set t.hits 0

let io_total t = Atomic.get t.reads + Atomic.get t.writes

let local_stats () =
  let c = Tally.get () in
  { reads = c.Tally.treads; writes = c.Tally.twrites; hits = c.Tally.thits }

let diff (a : stats) (b : stats) =
  { reads = a.reads - b.reads; writes = a.writes - b.writes;
    hits = a.hits - b.hits }

let resident t ~file ~page =
  protect t.lock (fun () -> Hashtbl.mem t.table (file, page))

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "reads=%d writes=%d hits=%d" s.reads s.writes s.hits
