type key = int * int

type frame = {
  key : key;
  mutable dirty : bool;
  mutable prev : frame option;
  mutable next : frame option;
}

type stats = { reads : int; writes : int; hits : int }

(* Per-domain IO tally.  Every counted event bumps both the pool's global
   (atomic) counters and the calling domain's tally.  A domain executes one
   query at a time, so the tally's growth over a window is exactly the IO
   that domain's query incurred — concurrent workers never perturb each
   other's measurement, unlike a shared reset-then-read counter. *)
module Tally = struct
  type c = { mutable treads : int; mutable twrites : int; mutable thits : int }

  let key = Domain.DLS.new_key (fun () -> { treads = 0; twrites = 0; thits = 0 })
  let get () = Domain.DLS.get key
end

type t = {
  capacity : int;
  lock : Mutex.t;
  table : (key, frame) Hashtbl.t;
  mutable head : frame option;  (* most recently used *)
  mutable tail : frame option;  (* least recently used *)
  reads : int Atomic.t;
  writes : int Atomic.t;
  hits : int Atomic.t;
  (* Fault injection: consulted before the op touches the LRU, so a faulted
     op costs no IO and leaves no frame behind.  [faults] is only swapped
     between runs; the per-op decision state lives inside the plan. *)
  mutable faults : Fault.t option;
  finjected : int Atomic.t;
  fretried : int Atomic.t;
  frecovered : int Atomic.t;
  fexhausted : int Atomic.t;
}

(* [Mutex.protect] exists only since OCaml 5.1; the package claims >= 5.0. *)
let protect m f =
  Mutex.lock m;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception e ->
    Mutex.unlock m;
    raise e

let create ~frames =
  if frames < 1 then invalid_arg "Buffer_pool.create: frames < 1";
  {
    capacity = frames;
    lock = Mutex.create ();
    table = Hashtbl.create (2 * frames);
    head = None;
    tail = None;
    reads = Atomic.make 0;
    writes = Atomic.make 0;
    hits = Atomic.make 0;
    faults = None;
    finjected = Atomic.make 0;
    fretried = Atomic.make 0;
    frecovered = Atomic.make 0;
    fexhausted = Atomic.make 0;
  }

let frames t = t.capacity

(* ---- fault injection ---- *)

let set_faults t plan = t.faults <- plan
let faults t = t.faults

type fault_stats = {
  injected : int;  (** typed faults raised (IO failures and corruptions) *)
  retried : int;  (** individual retry attempts spent *)
  recovered : int;  (** reads that succeeded after >= 1 retry *)
  exhausted : int;  (** reads that still failed after the retry budget *)
}

let fault_stats t =
  { injected = Atomic.get t.finjected; retried = Atomic.get t.fretried;
    recovered = Atomic.get t.frecovered; exhausted = Atomic.get t.fexhausted }

let reset_fault_stats t =
  Atomic.set t.finjected 0;
  Atomic.set t.fretried 0;
  Atomic.set t.frecovered 0;
  Atomic.set t.fexhausted 0

let io_op_of = function
  | Fault.Read -> Avq_error.Read
  | Fault.Write -> Avq_error.Write
  | Fault.Alloc -> Avq_error.Alloc

let maybe_fault t ~(op : Fault.op) ~file ~page =
  match t.faults with
  | None -> ()
  | Some plan -> (
    match Fault.check plan ~op ~file ~page with
    | None -> ()
    | Some Fault.Fail ->
      Atomic.incr t.finjected;
      Avq_error.error
        (Avq_error.Io_fault { op = io_op_of op; file; page; attempts = 1 })
    | Some Fault.Corrupt ->
      Atomic.incr t.finjected;
      Avq_error.error
        (Avq_error.Corruption
           { file; page; detail = "injected checksum mismatch" }))

let count_read t =
  Atomic.incr t.reads;
  let c = Tally.get () in
  c.Tally.treads <- c.Tally.treads + 1

let count_write t =
  Atomic.incr t.writes;
  let c = Tally.get () in
  c.Tally.twrites <- c.Tally.twrites + 1

let count_hit t =
  Atomic.incr t.hits;
  let c = Tally.get () in
  c.Tally.thits <- c.Tally.thits + 1

let unlink t f =
  (match f.prev with Some p -> p.next <- f.next | None -> t.head <- f.next);
  (match f.next with Some n -> n.prev <- f.prev | None -> t.tail <- f.prev);
  f.prev <- None;
  f.next <- None

let push_front t f =
  f.next <- t.head;
  f.prev <- None;
  (match t.head with Some h -> h.prev <- Some f | None -> t.tail <- Some f);
  t.head <- Some f

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some f ->
    unlink t f;
    Hashtbl.remove t.table f.key;
    if f.dirty then count_write t

let insert t key ~dirty =
  if Hashtbl.length t.table >= t.capacity then evict_lru t;
  let f = { key; dirty; prev = None; next = None } in
  Hashtbl.replace t.table key f;
  push_front t f

let touch t key ~dirty =
  match Hashtbl.find_opt t.table key with
  | Some f ->
    count_hit t;
    if dirty then f.dirty <- true;
    unlink t f;
    push_front t f;
    true
  | None -> false

let read t ~file ~page =
  maybe_fault t ~op:Fault.Read ~file ~page;
  protect t.lock (fun () ->
      let key = (file, page) in
      if not (touch t key ~dirty:false) then begin
        count_read t;
        insert t key ~dirty:false
      end)

let write t ~file ~page =
  maybe_fault t ~op:Fault.Write ~file ~page;
  protect t.lock (fun () ->
      let key = (file, page) in
      if not (touch t key ~dirty:true) then begin
        count_read t;
        insert t key ~dirty:true
      end)

let alloc t ~file ~page =
  maybe_fault t ~op:Fault.Alloc ~file ~page;
  protect t.lock (fun () ->
      let key = (file, page) in
      if not (touch t key ~dirty:true) then insert t key ~dirty:true)

(* Exponentially-spun backoff: the engine's "disk" is simulated, so the
   backoff only needs to model give-the-device-a-moment semantics without
   adding a Unix dependency or real latency to tests.  With jitter > 0 the
   spin count is scaled by a factor in [1-jitter, 1+jitter) drawn from the
   plan's stateless hash — a pure function of (seed, salt, attempt), so any
   scheduled replay is still reproducible while workers with different
   salts desynchronize instead of hammering a hot page in lockstep. *)
let backoff_spins ?(jitter = 0.) ~seed ~salt attempt =
  let base = 1 lsl min attempt 10 in
  if jitter <= 0. then base
  else begin
    let u = Fault.hash_unit seed salt attempt in
    let f = 1. +. (jitter *. ((2. *. u) -. 1.)) in
    max 1 (int_of_float (float_of_int base *. f))
  end

let backoff ?jitter ~seed ~salt attempt =
  for _ = 1 to backoff_spins ?jitter ~seed ~salt attempt do
    Domain.cpu_relax ()
  done

(* Bounded retry for transient faults.  Only [Io_fault] is retried —
   [Corruption] is permanent by definition and re-raised untouched.  The
   retry budget comes from the installed plan ([Fault.retries]), so a
   fault-free pool pays exactly one match on [t.faults] per read. *)
let read_retrying t ~file ~page =
  let max_retries, jitter, seed =
    match t.faults with
    | None -> (0, 0., 0)
    | Some plan -> (Fault.retries plan, Fault.jitter plan, Fault.seed plan)
  in
  (* The salt folds in the domain so concurrent workers retrying the same
     hot page draw different jitter streams. *)
  let salt =
    (file * 8191) lxor page lxor (((Domain.self () :> int) + 1) * 0x9e3779b9)
  in
  let rec go attempt =
    match read t ~file ~page with
    | () -> if attempt > 1 then Atomic.incr t.frecovered
    | exception Avq_error.Error (Avq_error.Io_fault f) ->
      if attempt > max_retries then begin
        Atomic.incr t.fexhausted;
        Avq_error.error (Avq_error.Io_fault { f with attempts = attempt })
      end
      else begin
        Atomic.incr t.fretried;
        backoff ~jitter ~seed ~salt attempt;
        go (attempt + 1)
      end
  in
  go 1

let drop_file t ~file =
  protect t.lock (fun () ->
      let doomed =
        Hashtbl.fold
          (fun (f, p) fr acc -> if f = file then (fr, p) :: acc else acc)
          t.table []
      in
      List.iter
        (fun (fr, _p) ->
          unlink t fr;
          Hashtbl.remove t.table fr.key)
        doomed)

let flush_all t =
  protect t.lock (fun () ->
      Hashtbl.iter
        (fun _ f ->
          if f.dirty then begin
            f.dirty <- false;
            count_write t
          end)
        t.table)

let clear t =
  protect t.lock (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None)

let stats t =
  { reads = Atomic.get t.reads; writes = Atomic.get t.writes;
    hits = Atomic.get t.hits }

let reset_stats t =
  Atomic.set t.reads 0;
  Atomic.set t.writes 0;
  Atomic.set t.hits 0

let io_total t = Atomic.get t.reads + Atomic.get t.writes

let local_stats () =
  let c = Tally.get () in
  { reads = c.Tally.treads; writes = c.Tally.twrites; hits = c.Tally.thits }

let diff (a : stats) (b : stats) =
  { reads = a.reads - b.reads; writes = a.writes - b.writes;
    hits = a.hits - b.hits }

(* Fold IO another domain already incurred into the calling domain's tally.
   Only the DLS tally is bumped — the global atomics were counted when the
   worker touched the pages, so adding them again would double-count. *)
let add_local (s : stats) =
  let c = Tally.get () in
  c.Tally.treads <- c.Tally.treads + s.reads;
  c.Tally.twrites <- c.Tally.twrites + s.writes;
  c.Tally.thits <- c.Tally.thits + s.hits

let resident t ~file ~page =
  protect t.lock (fun () -> Hashtbl.mem t.table (file, page))

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "reads=%d writes=%d hits=%d" s.reads s.writes s.hits
