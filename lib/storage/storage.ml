type t = {
  pool : Buffer_pool.t;
  next_file : int Atomic.t;
  (* Checksum verification switch shared by every heap this storage creates;
     flipped on when a fault plan is installed. *)
  verify : bool Atomic.t;
  (* Live temp-file count: create_temp/drop_temp bracket every spill file,
     so a non-zero value after a run is a leak. *)
  temps_live : int Atomic.t;
}

let create ?(frames = 256) () =
  { pool = Buffer_pool.create ~frames; next_file = Atomic.make 0;
    verify = Atomic.make false; temps_live = Atomic.make 0 }

let pool t = t.pool

let fresh_file t = Atomic.fetch_and_add t.next_file 1

let create_heap t schema =
  Heap_file.create ~pool:t.pool ~file_id:(fresh_file t) ~verify:t.verify schema

let load_relation t rel =
  Heap_file.of_relation ~pool:t.pool ~file_id:(fresh_file t) ~verify:t.verify rel

let create_index t ?order () =
  Btree.create ~pool:t.pool ~file_id:(fresh_file t) ?order ()

let build_index t heap ~column =
  let idx = create_index t () in
  Heap_file.scan heap (fun rid tup -> Btree.insert idx (Tuple.get tup column) rid);
  idx

let create_temp t schema =
  Atomic.incr t.temps_live;
  create_heap t schema

let drop_temp t heap =
  Atomic.decr t.temps_live;
  Heap_file.drop heap

let live_temps t = Atomic.get t.temps_live

let set_verify_checksums t on = Atomic.set t.verify on
let verify_checksums t = Atomic.get t.verify

let io_stats t = Buffer_pool.stats t.pool
let reset_io t = Buffer_pool.reset_stats t.pool

let io_snapshot _t = Buffer_pool.local_stats ()
let io_since _t before = Buffer_pool.diff (Buffer_pool.local_stats ()) before
let io_add_local _t s = Buffer_pool.add_local s

(* ---- table write path ---- *)

module Table = struct
  let insert heap rows = List.map (Heap_file.append heap) rows
end

(* ---- fault injection ---- *)

(* Installing a plan arms the buffer pool (every read/write/alloc, heap,
   index and temp alike, consults it) and turns page-checksum verification
   on, so injected silent corruption is caught at fetch time. *)
module Faults = struct
  let install t plan =
    Buffer_pool.set_faults t.pool (Some plan);
    Atomic.set t.verify true

  let clear t =
    Buffer_pool.set_faults t.pool None;
    Atomic.set t.verify false

  let plan t = Buffer_pool.faults t.pool
  let stats t = Buffer_pool.fault_stats t.pool
  let reset_stats t = Buffer_pool.reset_fault_stats t.pool
end
