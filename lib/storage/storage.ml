type t = { pool : Buffer_pool.t; next_file : int Atomic.t }

let create ?(frames = 256) () =
  { pool = Buffer_pool.create ~frames; next_file = Atomic.make 0 }

let pool t = t.pool

let fresh_file t = Atomic.fetch_and_add t.next_file 1

let create_heap t schema = Heap_file.create ~pool:t.pool ~file_id:(fresh_file t) schema

let load_relation t rel =
  Heap_file.of_relation ~pool:t.pool ~file_id:(fresh_file t) rel

let create_index t ?order () =
  Btree.create ~pool:t.pool ~file_id:(fresh_file t) ?order ()

let build_index t heap ~column =
  let idx = create_index t () in
  Heap_file.scan heap (fun rid tup -> Btree.insert idx (Tuple.get tup column) rid);
  idx

let create_temp = create_heap

let drop_temp _t heap = Heap_file.drop heap

let io_stats t = Buffer_pool.stats t.pool
let reset_io t = Buffer_pool.reset_stats t.pool

let io_snapshot _t = Buffer_pool.local_stats ()
let io_since _t before = Buffer_pool.diff (Buffer_pool.local_stats ()) before
