(** Heap files: unordered paged storage of tuples.

    A heap file owns a file id within a {!Buffer_pool} and stores tuples in
    fixed-capacity pages (capacity derived from the schema's byte width).
    Every page touched by {!append}, {!get} or the scanning functions is
    routed through the pool, so scans of a table cost [npages] physical reads
    when cold and zero when resident.

    Robustness: every page carries a content checksum, maintained
    incrementally on {!append} and verified on fetch when the shared
    [verify] switch is on (see {!Storage.Faults.install}); a mismatch — e.g.
    after {!corrupt} — raises a typed {!Avq_error.Corruption} instead of
    silently returning damaged rows.  Page reads go through
    {!Buffer_pool.read_retrying}, so transient injected faults are retried
    within the installed plan's budget. *)

type t

val create :
  pool:Buffer_pool.t -> file_id:int -> ?verify:bool Atomic.t -> Schema.t -> t
(** [create ~pool ~file_id ~verify schema]: [verify] is the
    checksum-verification switch, usually shared across all heaps of one
    [Storage.t]; defaults to a private always-off switch. *)

val schema : t -> Schema.t
val file_id : t -> int
val page_capacity : t -> int

val append : t -> Tuple.t -> Page.rid
val append_all : t -> Tuple.t list -> unit

val nrows : t -> int
val npages : t -> int

val page_checksums : t -> int array
(** Snapshot of the incrementally maintained per-page content checksums,
    one per existing page.  Durable checkpoints store these; recovery
    recomputes checksums over the reloaded rows and compares. *)

val get : t -> Page.rid -> Tuple.t
(** Fetch one tuple by rid (one page access).
    @raise Avq_error.Error ([Corruption]) on an out-of-range rid — a
    dangling reference is structural damage, not a usage error. *)

val corrupt : t -> Page.rid -> unit
(** Silently damage the stored row without updating the page checksum
    (simulates media corruption; the next verified fetch of that page raises
    [Corruption]).
    @raise Invalid_argument on an out-of-range rid. *)

val set_page_hook : t -> (int -> unit) option -> unit
(** Hook invoked with the page index just before each fresh page is
    allocated; the executor uses it on temp heaps to enforce spill quotas.
    An exception from the hook aborts the append with no state change. *)

val scan : t -> (Page.rid -> Tuple.t -> unit) -> unit
(** Full scan in storage order, accessing each page once. *)

val to_seq : t -> Tuple.t Seq.t
(** Lazy full scan; page accesses are charged as the sequence is consumed. *)

val scan_segment : t -> page:int -> npages:int -> Tuple.t array * int * int
(** [scan_segment t ~page ~npages] charges the pool one read per existing
    page in [page .. page+npages-1] and returns [(rows, lo, len)]: a view of
    the backing row array covering those pages ([len] = 0 past the end of
    the file).  Zero-copy — callers must treat [rows] as read-only and must
    not retain it across appends.  This is the batch executor's scan
    primitive: one pool touch per page and no per-tuple copying at all. *)

val of_relation :
  pool:Buffer_pool.t -> file_id:int -> ?verify:bool Atomic.t -> Relation.t -> t
val to_relation : t -> Relation.t

val drop : t -> unit
(** Discard the file's frames from the pool without write-back (used for
    temporaries). *)
