type t = {
  pool : Buffer_pool.t;
  file_id : int;
  schema : Schema.t;
  page_capacity : int;
  mutable data : Tuple.t array;  (* growable; row i lives on page i/capacity *)
  mutable nrows : int;
  (* Per-page content checksums, maintained incrementally on append and
     verified on fetch when [verify] is on (see {!verify_page}): silent
     corruption of the backing rows becomes a typed [Corruption] error
     instead of wrong query results. *)
  mutable cksums : int array;
  verify : bool Atomic.t;
  (* Invoked with the page index just before a fresh page is allocated;
     [Exec_ctx] hooks temp heaps here to enforce the spill quota. *)
  mutable page_hook : (int -> unit) option;
}

let create ~pool ~file_id ?verify schema =
  {
    pool;
    file_id;
    schema;
    page_capacity = Page.capacity ~row_bytes:(Schema.byte_width schema);
    data = [||];
    nrows = 0;
    cksums = [||];
    verify = (match verify with Some v -> v | None -> Atomic.make false);
    page_hook = None;
  }

let schema t = t.schema
let file_id t = t.file_id
let page_capacity t = t.page_capacity
let nrows t = t.nrows

let set_page_hook t f = t.page_hook <- f

let npages t =
  if t.nrows = 0 then 0 else ((t.nrows - 1) / t.page_capacity) + 1

let grow t =
  let cap = Array.length t.data in
  if t.nrows >= cap then begin
    let cap' = max 64 (2 * cap) in
    let data' = Array.make cap' [||] in
    Array.blit t.data 0 data' 0 cap;
    t.data <- data'
  end

(* ---- page checksums ---- *)

let cksum_seed = 0x1505

let row_hash tup =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 tup

let cksum_combine ck h = ((ck * 1000003) lxor h) land max_int

let grow_cksums t page =
  let cap = Array.length t.cksums in
  if page >= cap then begin
    let cks' = Array.make (max 16 (2 * max cap (page + 1))) cksum_seed in
    Array.blit t.cksums 0 cks' 0 cap;
    t.cksums <- cks'
  end

let page_checksum t page =
  let lo = page * t.page_capacity in
  let hi = min t.nrows (lo + t.page_capacity) in
  let ck = ref cksum_seed in
  for i = lo to hi - 1 do
    ck := cksum_combine !ck (row_hash t.data.(i))
  done;
  !ck

(* Snapshot of the maintained per-page checksums (not recomputed): a durable
   checkpoint stores these so recovery can verify the reloaded pages against
   what the writer believed it had. *)
let page_checksums t =
  Array.init (npages t) (fun p ->
      if p < Array.length t.cksums then t.cksums.(p) else cksum_seed)

let verify_page t page =
  if Atomic.get t.verify && page < Array.length t.cksums then begin
    let stored = t.cksums.(page) in
    let computed = page_checksum t page in
    if stored <> computed then
      Avq_error.error
        (Avq_error.Corruption
           {
             file = t.file_id;
             page;
             detail =
               Printf.sprintf "checksum mismatch (stored %#x, computed %#x)"
                 stored computed;
           })
  end

(* Every page fetch funnels through here: bounded retry for transient
   injected faults, then checksum verification of what "came off disk". *)
let read_page t page =
  Buffer_pool.read_retrying t.pool ~file:t.file_id ~page;
  verify_page t page

let corrupt t (rid : Page.rid) =
  let idx = (rid.page * t.page_capacity) + rid.slot in
  if idx < 0 || idx >= t.nrows then invalid_arg "Heap_file.corrupt: rid out of range";
  (* Flip the stored row without touching the page checksum — exactly what
     silent media corruption looks like to the fetch path. *)
  t.data.(idx) <-
    Array.map
      (function Value.Int i -> Value.Int (i lxor 1) | _ -> Value.Int 0)
      t.data.(idx)

let append t tup =
  grow t;
  let page = t.nrows / t.page_capacity in
  let slot = t.nrows mod t.page_capacity in
  if slot = 0 then begin
    (match t.page_hook with Some f -> f page | None -> ());
    Buffer_pool.alloc t.pool ~file:t.file_id ~page;
    grow_cksums t page;
    t.cksums.(page) <- cksum_seed
  end
  else Buffer_pool.write t.pool ~file:t.file_id ~page;
  t.data.(t.nrows) <- tup;
  t.nrows <- t.nrows + 1;
  t.cksums.(page) <- cksum_combine t.cksums.(page) (row_hash tup);
  { Page.page; slot }

let append_all t tuples = List.iter (fun tup -> ignore (append t tup)) tuples

let get t (rid : Page.rid) =
  let idx = (rid.page * t.page_capacity) + rid.slot in
  if idx < 0 || idx >= t.nrows || rid.slot >= t.page_capacity then
    Avq_error.error
      (Avq_error.Corruption
         {
           file = t.file_id;
           page = rid.page;
           detail =
             Printf.sprintf "rid (%d,%d) out of range (nrows=%d)" rid.page
               rid.slot t.nrows;
         });
  read_page t rid.page;
  t.data.(idx)

let scan t f =
  for i = 0 to t.nrows - 1 do
    let page = i / t.page_capacity in
    let slot = i mod t.page_capacity in
    if slot = 0 then read_page t page;
    f { Page.page; slot } t.data.(i)
  done

let scan_segment t ~page ~npages =
  let lo = page * t.page_capacity in
  if lo >= t.nrows || npages <= 0 then (t.data, lo, 0)
  else begin
    let last = min (page + npages - 1) ((t.nrows - 1) / t.page_capacity) in
    for p = page to last do
      read_page t p
    done;
    let hi = min t.nrows ((last + 1) * t.page_capacity) in
    (t.data, lo, hi - lo)
  end

let to_seq t =
  let rec from i () =
    if i >= t.nrows then Seq.Nil
    else begin
      if i mod t.page_capacity = 0 then read_page t (i / t.page_capacity);
      Seq.Cons (t.data.(i), from (i + 1))
    end
  in
  from 0

let of_relation ~pool ~file_id ?verify rel =
  let t = create ~pool ~file_id ?verify (Relation.schema rel) in
  append_all t (Relation.tuples rel);
  t

let to_relation t =
  let acc = ref [] in
  scan t (fun _rid tup -> acc := tup :: !acc);
  Relation.create t.schema (List.rev !acc)

let drop t = Buffer_pool.drop_file t.pool ~file:t.file_id
