type t = {
  pool : Buffer_pool.t;
  file_id : int;
  schema : Schema.t;
  page_capacity : int;
  mutable data : Tuple.t array;  (* growable; row i lives on page i/capacity *)
  mutable nrows : int;
}

let create ~pool ~file_id schema =
  {
    pool;
    file_id;
    schema;
    page_capacity = Page.capacity ~row_bytes:(Schema.byte_width schema);
    data = [||];
    nrows = 0;
  }

let schema t = t.schema
let file_id t = t.file_id
let page_capacity t = t.page_capacity
let nrows t = t.nrows

let npages t =
  if t.nrows = 0 then 0 else ((t.nrows - 1) / t.page_capacity) + 1

let grow t =
  let cap = Array.length t.data in
  if t.nrows >= cap then begin
    let cap' = max 64 (2 * cap) in
    let data' = Array.make cap' [||] in
    Array.blit t.data 0 data' 0 cap;
    t.data <- data'
  end

let append t tup =
  grow t;
  let page = t.nrows / t.page_capacity in
  let slot = t.nrows mod t.page_capacity in
  if slot = 0 then Buffer_pool.alloc t.pool ~file:t.file_id ~page
  else Buffer_pool.write t.pool ~file:t.file_id ~page;
  t.data.(t.nrows) <- tup;
  t.nrows <- t.nrows + 1;
  { Page.page; slot }

let append_all t tuples = List.iter (fun tup -> ignore (append t tup)) tuples

let get t (rid : Page.rid) =
  let idx = (rid.page * t.page_capacity) + rid.slot in
  if idx < 0 || idx >= t.nrows || rid.slot >= t.page_capacity then
    invalid_arg "Heap_file.get: rid out of range";
  Buffer_pool.read t.pool ~file:t.file_id ~page:rid.page;
  t.data.(idx)

let scan t f =
  for i = 0 to t.nrows - 1 do
    let page = i / t.page_capacity in
    let slot = i mod t.page_capacity in
    if slot = 0 then Buffer_pool.read t.pool ~file:t.file_id ~page;
    f { Page.page; slot } t.data.(i)
  done

let scan_segment t ~page ~npages =
  let lo = page * t.page_capacity in
  if lo >= t.nrows || npages <= 0 then (t.data, lo, 0)
  else begin
    let last = min (page + npages - 1) ((t.nrows - 1) / t.page_capacity) in
    for p = page to last do
      Buffer_pool.read t.pool ~file:t.file_id ~page:p
    done;
    let hi = min t.nrows ((last + 1) * t.page_capacity) in
    (t.data, lo, hi - lo)
  end

let to_seq t =
  let rec from i () =
    if i >= t.nrows then Seq.Nil
    else begin
      if i mod t.page_capacity = 0 then
        Buffer_pool.read t.pool ~file:t.file_id ~page:(i / t.page_capacity);
      Seq.Cons (t.data.(i), from (i + 1))
    end
  in
  from 0

let of_relation ~pool ~file_id rel =
  let t = create ~pool ~file_id (Relation.schema rel) in
  append_all t (Relation.tuples rel);
  t

let to_relation t =
  let acc = ref [] in
  scan t (fun _rid tup -> acc := tup :: !acc);
  Relation.create t.schema (List.rev !acc)

let drop t = Buffer_pool.drop_file t.pool ~file:t.file_id
