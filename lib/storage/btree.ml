type bound = Value.t * bool

type entry = { key : Value.t; mutable rids : Page.rid list }

type node = Leaf of leaf | Internal of internal

and leaf = {
  mutable entries : entry array;  (* sorted by key, distinct *)
  mutable next : leaf option;
  lpage : int;
}

and internal = {
  mutable keys : Value.t array;  (* separators; length = #children - 1 *)
  mutable children : node array;
  ipage : int;
}

type t = {
  pool : Buffer_pool.t;
  file_id : int;
  order : int;
  mutable root : node;
  mutable next_page : int;
  mutable nkeys : int;
  mutable nentries : int;
}

let default_order = Page.size / 16

let fresh_page t =
  let p = t.next_page in
  t.next_page <- p + 1;
  Buffer_pool.alloc t.pool ~file:t.file_id ~page:p;
  p

let create ~pool ~file_id ?(order = default_order) () =
  if order < 4 then invalid_arg "Btree.create: order < 4";
  let t =
    { pool; file_id; order; root = Leaf { entries = [||]; next = None; lpage = 0 };
      next_page = 0; nkeys = 0; nentries = 0 }
  in
  let p = fresh_page t in
  t.root <- Leaf { entries = [||]; next = None; lpage = p };
  t

let page_of = function Leaf l -> l.lpage | Internal n -> n.ipage

(* Index descents retry transient faults like heap reads do (the retry
   budget comes from the installed fault plan); structural damage surfaces
   as typed [Corruption] from {!check_invariants}. *)
let read_node t n =
  Buffer_pool.read_retrying t.pool ~file:t.file_id ~page:(page_of n)
let write_node t n = Buffer_pool.write t.pool ~file:t.file_id ~page:(page_of n)

(* Index of the child to descend into for [key]: first separator > key. *)
let child_index keys key =
  let n = Array.length keys in
  let rec loop i = if i >= n || Value.compare key keys.(i) < 0 then i else loop (i + 1) in
  loop 0

(* Position of [key] in sorted [entries]: Ok i if present, Error i for the
   insertion point. *)
let leaf_position entries key =
  let lo = ref 0 and hi = ref (Array.length entries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare entries.(mid).key key < 0 then lo := mid + 1 else hi := mid
  done;
  if !lo < Array.length entries && Value.compare entries.(!lo).key key = 0 then
    Ok !lo
  else Error !lo

let array_insert arr i x =
  let n = Array.length arr in
  Array.init (n + 1) (fun j -> if j < i then arr.(j) else if j = i then x else arr.(j - 1))

(* Insert into the subtree rooted at [node]; return the (separator, right
   sibling) produced if the node split. *)
let rec insert_node t node key rid =
  read_node t node;
  match node with
  | Leaf l -> begin
    match leaf_position l.entries key with
    | Ok i ->
      l.entries.(i).rids <- rid :: l.entries.(i).rids;
      t.nentries <- t.nentries + 1;
      write_node t node;
      None
    | Error i ->
      l.entries <- array_insert l.entries i { key; rids = [ rid ] };
      t.nkeys <- t.nkeys + 1;
      t.nentries <- t.nentries + 1;
      write_node t node;
      if Array.length l.entries <= t.order then None
      else begin
        let n = Array.length l.entries in
        let mid = n / 2 in
        let right_entries = Array.sub l.entries mid (n - mid) in
        let right =
          { entries = right_entries; next = l.next; lpage = fresh_page t }
        in
        l.entries <- Array.sub l.entries 0 mid;
        l.next <- Some right;
        write_node t node;
        Some (right_entries.(0).key, Leaf right)
      end
  end
  | Internal nd -> begin
    let ci = child_index nd.keys key in
    match insert_node t nd.children.(ci) key rid with
    | None -> None
    | Some (sep, right_child) ->
      nd.keys <- array_insert nd.keys ci sep;
      nd.children <- array_insert nd.children (ci + 1) right_child;
      write_node t node;
      if Array.length nd.children <= t.order then None
      else begin
        let m = Array.length nd.keys in
        let h = m / 2 in
        let sep_up = nd.keys.(h) in
        let right =
          {
            keys = Array.sub nd.keys (h + 1) (m - h - 1);
            children = Array.sub nd.children (h + 1) (m - h);
            ipage = fresh_page t;
          }
        in
        nd.keys <- Array.sub nd.keys 0 h;
        nd.children <- Array.sub nd.children 0 (h + 1);
        write_node t node;
        Some (sep_up, Internal right)
      end
  end

let insert t key rid =
  match insert_node t t.root key rid with
  | None -> ()
  | Some (sep, right) ->
    let root =
      { keys = [| sep |]; children = [| t.root; right |]; ipage = fresh_page t }
    in
    t.root <- Internal root

let rec descend_to_leaf t node key =
  read_node t node;
  match node with
  | Leaf l -> l
  | Internal nd -> descend_to_leaf t nd.children.(child_index nd.keys key) key

let rec leftmost_leaf t node =
  read_node t node;
  match node with
  | Leaf l -> l
  | Internal nd -> leftmost_leaf t nd.children.(0)

let search_eq t key =
  let l = descend_to_leaf t t.root key in
  match leaf_position l.entries key with
  | Ok i -> l.entries.(i).rids
  | Error _ -> []

let above_lo lo key =
  match lo with
  | None -> true
  | Some (v, incl) ->
    let c = Value.compare key v in
    if incl then c >= 0 else c > 0

let below_hi hi key =
  match hi with
  | None -> true
  | Some (v, incl) ->
    let c = Value.compare key v in
    if incl then c <= 0 else c < 0

let search_range t ?lo ?hi () =
  let start =
    match lo with
    | None -> leftmost_leaf t t.root
    | Some (v, _) -> descend_to_leaf t t.root v
  in
  let acc = ref [] in
  let rec walk leaf_opt =
    match leaf_opt with
    | None -> ()
    | Some l ->
      Buffer_pool.read_retrying t.pool ~file:t.file_id ~page:l.lpage;
      let stop = ref false in
      Array.iter
        (fun e ->
          if not !stop then
            if not (below_hi hi e.key) then stop := true
            else if above_lo lo e.key then
              acc := List.rev_append e.rids !acc)
        l.entries;
      if not !stop then walk l.next
  in
  walk (Some start);
  List.rev !acc

let height t =
  let rec go node acc =
    match node with Leaf _ -> acc | Internal nd -> go nd.children.(0) (acc + 1)
  in
  go t.root 1

let npages t = t.next_page
let nentries t = t.nentries
let nkeys t = t.nkeys

let check_invariants t =
  (* Invariant violations are structural damage to the index file, so they
     surface as typed [Corruption] (not a bare [Failure]) and carry the
     page they were detected at. *)
  let fail page fmt =
    Format.kasprintf
      (fun detail ->
        Avq_error.error (Avq_error.Corruption { file = t.file_id; page; detail }))
      fmt
  in
  let rec check node lo hi depth =
    (match node with
     | Leaf l ->
       let n = Array.length l.entries in
       for i = 0 to n - 1 do
         let k = l.entries.(i).key in
         if i > 0 && Value.compare l.entries.(i - 1).key k >= 0 then
           fail l.lpage "leaf keys not strictly sorted";
         (match lo with
          | Some v when Value.compare k v < 0 ->
            fail l.lpage "leaf key below separator"
          | _ -> ());
         (match hi with
          | Some v when Value.compare k v >= 0 ->
            fail l.lpage "leaf key not below separator"
          | _ -> ());
         if l.entries.(i).rids = [] then fail l.lpage "empty rid list"
       done;
       [ depth ]
     | Internal nd ->
       let m = Array.length nd.keys in
       if Array.length nd.children <> m + 1 then
         fail nd.ipage "children/keys arity mismatch";
       if Array.length nd.children > t.order then
         fail nd.ipage "internal overflow";
       for i = 1 to m - 1 do
         if Value.compare nd.keys.(i - 1) nd.keys.(i) >= 0 then
           fail nd.ipage "separators not sorted"
       done;
       List.concat
         (List.mapi
            (fun i child ->
              let lo' = if i = 0 then lo else Some nd.keys.(i - 1) in
              let hi' = if i = m then hi else Some nd.keys.(i) in
              check child lo' hi' (depth + 1))
            (Array.to_list nd.children)))
  in
  let depths = check t.root None None 1 in
  match depths with
  | [] -> ()
  | d :: rest ->
    if not (List.for_all (fun x -> x = d) rest) then
      fail (page_of t.root) "leaves at unequal depths"
