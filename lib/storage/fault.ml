type op = Read | Write | Alloc

type action = Fail | Corrupt

type rule = {
  rop : op option;
  raction : action;
  rfile : int option;
  rpage : int option;
  rprob : float;
  revery : int option;
  rat : int list;
}

(* A rule plus its match counter.  The counter is atomic so concurrent
   domains can consult one shared plan; determinism of *which* ops fault is
   guaranteed for single-threaded replays (the op order is then fixed). *)
type armed = { arule : rule; count : int Atomic.t }

type t = {
  pseed : int;
  pretries : int;
  pjitter : float;
  prules : armed list;
  pinjected : int Atomic.t;
}

let make ?(seed = 0) ?(retries = 0) ?(jitter = 0.) rules =
  if retries < 0 then invalid_arg "Fault.make: retries < 0";
  if jitter < 0. || jitter > 1. then
    invalid_arg "Fault.make: jitter outside [0,1]";
  {
    pseed = seed;
    pretries = retries;
    pjitter = jitter;
    prules = List.map (fun r -> { arule = r; count = Atomic.make 0 }) rules;
    pinjected = Atomic.make 0;
  }

let rule ?op ?(action = Fail) ?file ?page ?(p = 0.) ?every ?(at = []) () =
  if p < 0. || p > 1. then invalid_arg "Fault.rule: p outside [0,1]";
  (match every with
   | Some n when n < 1 -> invalid_arg "Fault.rule: every < 1"
   | _ -> ());
  { rop = op; raction = action; rfile = file; rpage = page; rprob = p;
    revery = every; rat = at }

let seed t = t.pseed
let retries t = t.pretries
let jitter t = t.pjitter
let rules t = List.map (fun a -> a.arule) t.prules
let injected t = Atomic.get t.pinjected

(* splitmix64-style avalanche of (seed, rule index, match count) to a float
   in [0,1): stateless, so the nth matching op's fate is a pure function of
   the plan — no shared RNG stream to perturb under concurrency. *)
let hash_unit seed idx n =
  let z = ref (seed lxor (idx * 0x9e3779b9) lxor (n * 0xbf58476d)) in
  z := (!z lxor (!z lsr 30)) * 0x1b873593;
  z := (!z lxor (!z lsr 27)) * 0x94d049bb;
  z := !z lxor (!z lsr 31);
  float_of_int (!z land 0xFFFFFF) /. float_of_int 0x1000000

let matches r ~op ~file ~page =
  (match r.rop with None -> true | Some o -> o = op)
  && (match r.rfile with None -> true | Some f -> f = file)
  && (match r.rpage with None -> true | Some p -> p = page)

(* A rule with neither probability nor schedule is persistent: it triggers
   on every matching op (useful for "this page is bad" scenarios). *)
let triggers t idx (a : armed) n =
  let r = a.arule in
  if r.rat <> [] then List.mem n r.rat
  else
    match r.revery with
    | Some k -> n mod k = 0
    | None ->
      if r.rprob > 0. then hash_unit t.pseed idx n < r.rprob else true

let check t ~op ~file ~page =
  let rec scan idx = function
    | [] -> None
    | a :: rest ->
      if matches a.arule ~op ~file ~page then begin
        let n = 1 + Atomic.fetch_and_add a.count 1 in
        if triggers t idx a n then begin
          Atomic.incr t.pinjected;
          Some a.arule.raction
        end
        else scan (idx + 1) rest
      end
      else scan (idx + 1) rest
  in
  scan 0 t.prules

(* ---- spec parsing ---- *)

let op_of_string = function
  | "read" -> Ok (Some Read, Fail)
  | "write" -> Ok (Some Write, Fail)
  | "alloc" -> Ok (Some Alloc, Fail)
  | "io" -> Ok (None, Fail)
  | "corrupt" -> Ok (Some Read, Corrupt)
  | s -> Error (Printf.sprintf "unknown fault target %S" s)

let int_of k v =
  match int_of_string_opt v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%s expects an integer, got %S" k v)

let parse_rule target opts =
  match op_of_string target with
  | Error _ as e -> e
  | Ok (rop, raction) ->
    let r =
      ref { rop; raction; rfile = None; rpage = None; rprob = 0.;
            revery = None; rat = [] }
    in
    let err = ref None in
    List.iter
      (fun opt ->
        if !err = None then
          match String.index_opt opt '=' with
          | None -> err := Some (Printf.sprintf "malformed option %S" opt)
          | Some i ->
            let k = String.sub opt 0 i in
            let v = String.sub opt (i + 1) (String.length opt - i - 1) in
            let set g = match g with Ok x -> x | Error e -> err := Some e; !r in
            (match k with
             | "p" -> (
               match float_of_string_opt v with
               | Some p when p >= 0. && p <= 1. -> r := { !r with rprob = p }
               | _ -> err := Some (Printf.sprintf "p expects a float in [0,1], got %S" v))
             | "every" ->
               r := set (Result.map (fun n -> { !r with revery = Some n }) (int_of k v))
             | "at" ->
               let parts = String.split_on_char '+' v in
               let ns = List.filter_map int_of_string_opt parts in
               if List.length ns <> List.length parts then
                 err := Some (Printf.sprintf "at expects <n>+<n>+.., got %S" v)
               else r := { !r with rat = ns }
             | "file" ->
               r := set (Result.map (fun n -> { !r with rfile = Some n }) (int_of k v))
             | "page" ->
               r := set (Result.map (fun n -> { !r with rpage = Some n }) (int_of k v))
             | k -> err := Some (Printf.sprintf "unknown rule option %S" k)))
      opts;
    (match !err with Some e -> Error e | None -> Ok !r)

let parse spec =
  let entries =
    String.split_on_char ';' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let seed = ref 0 and retries = ref 0 and jitter = ref 0. in
  let rules = ref [] in
  let err = ref None in
  List.iter
    (fun entry ->
      if !err = None then
        match String.index_opt entry ':' with
        | Some i ->
          let target = String.sub entry 0 i in
          let opts =
            String.sub entry (i + 1) (String.length entry - i - 1)
            |> String.split_on_char ','
            |> List.map String.trim
            |> List.filter (fun s -> s <> "")
          in
          (match parse_rule target opts with
           | Ok r -> rules := r :: !rules
           | Error e -> err := Some e)
        | None -> (
          match String.index_opt entry '=' with
          | None ->
            (* A bare target like "read" is a persistent every-op rule. *)
            (match parse_rule entry [] with
             | Ok r -> rules := r :: !rules
             | Error e -> err := Some e)
          | Some i ->
            let k = String.sub entry 0 i in
            let v = String.sub entry (i + 1) (String.length entry - i - 1) in
            (match k, int_of_string_opt v with
             | "seed", Some n -> seed := n
             | "retries", Some n when n >= 0 -> retries := n
             | ("seed" | "retries"), _ ->
               err := Some (Printf.sprintf "%s expects an integer, got %S" k v)
             | "jitter", _ -> (
               match float_of_string_opt v with
               | Some j when j >= 0. && j <= 1. -> jitter := j
               | _ ->
                 err :=
                   Some
                     (Printf.sprintf "jitter expects a float in [0,1], got %S" v))
             | _ -> err := Some (Printf.sprintf "unknown plan entry %S" entry))))
    entries;
  match !err with
  | Some e -> Error e
  | None ->
    if !rules = [] then Error "fault plan has no rules"
    else
      Ok (make ~seed:!seed ~retries:!retries ~jitter:!jitter (List.rev !rules))

let rule_to_string r =
  let target =
    match r.raction, r.rop with
    | Corrupt, _ -> "corrupt"
    | Fail, None -> "io"
    | Fail, Some Read -> "read"
    | Fail, Some Write -> "write"
    | Fail, Some Alloc -> "alloc"
  in
  let opts =
    List.concat
      [
        (if r.rprob > 0. then [ Printf.sprintf "p=%g" r.rprob ] else []);
        (match r.revery with Some n -> [ Printf.sprintf "every=%d" n ] | None -> []);
        (if r.rat <> [] then
           [ "at=" ^ String.concat "+" (List.map string_of_int r.rat) ]
         else []);
        (match r.rfile with Some f -> [ Printf.sprintf "file=%d" f ] | None -> []);
        (match r.rpage with Some p -> [ Printf.sprintf "page=%d" p ] | None -> []);
      ]
  in
  if opts = [] then target else target ^ ":" ^ String.concat "," opts

let to_string t =
  String.concat ";"
    (Printf.sprintf "seed=%d" t.pseed
     :: Printf.sprintf "retries=%d" t.pretries
     :: ((if t.pjitter > 0. then [ Printf.sprintf "jitter=%g" t.pjitter ] else [])
        @ List.map (fun a -> rule_to_string a.arule) t.prules))
