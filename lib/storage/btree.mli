(** B+-tree secondary indexes over a single column.

    Keys are {!Value.t}; duplicates are allowed (an entry maps a key to the
    rids of all tuples carrying it).  Nodes occupy pages of a dedicated file
    id, and every node visited by a lookup or range scan is accessed through
    the buffer pool, so index traversals are charged real page IO just like
    heap scans. *)

type t

type bound = Value.t * bool
(** A range endpoint: the value and whether it is inclusive. *)

val create : pool:Buffer_pool.t -> file_id:int -> ?order:int -> unit -> t
(** [create ~pool ~file_id ~order ()] makes an empty tree.  [order] is the
    maximum number of entries in a leaf and of children in an internal node;
    it defaults to the number of (key, pointer) pairs fitting a page.
    @raise Invalid_argument if [order < 4]. *)

val insert : t -> Value.t -> Page.rid -> unit

val search_eq : t -> Value.t -> Page.rid list
(** Rids of all tuples with exactly this key (storage order not guaranteed). *)

val search_range : t -> ?lo:bound -> ?hi:bound -> unit -> Page.rid list
(** Rids of all tuples with key in the given (possibly half-open) range, in
    ascending key order. *)

val height : t -> int
(** Levels from root to leaf (1 for a tree that is a single leaf). *)

val npages : t -> int
(** Number of node pages allocated. *)

val nentries : t -> int
(** Total number of rids stored. *)

val nkeys : t -> int
(** Number of distinct keys stored. *)

val check_invariants : t -> unit
(** Validate sortedness, separator and fill invariants.
    @raise Avq_error.Error ([Corruption], carrying the offending page and a
    description) on the first violation. *)
