(** Storage manager: one buffer pool, file-id allocation, temp files.

    All heap files and indexes of a database instance share one pool so that
    measured IO reflects cross-operator cache effects (e.g. a small dimension
    table staying resident across a nested-loop join). *)

type t

val create : ?frames:int -> unit -> t
(** [create ~frames ()] builds a manager whose pool holds [frames] pages
    (default 256). *)

val pool : t -> Buffer_pool.t

val create_heap : t -> Schema.t -> Heap_file.t
(** Allocate a fresh file id and an empty heap file for it. *)

val load_relation : t -> Relation.t -> Heap_file.t

val create_index : t -> ?order:int -> unit -> Btree.t
(** Allocate a fresh file id holding a new (empty) B+-tree. *)

val build_index : t -> Heap_file.t -> column:int -> Btree.t
(** Index column [column] of every tuple currently in the heap file. *)

val create_temp : t -> Schema.t -> Heap_file.t
(** A temp heap file (spill partition, sort run, materialized intermediate).
    Its page IO is charged like any other file. *)

val drop_temp : t -> Heap_file.t -> unit
(** Release a temp file's frames without write-back. *)

val live_temps : t -> int
(** Temp files created and not yet dropped, across all domains.  Non-zero
    after every statement of a run has finished means a leak. *)

val set_verify_checksums : t -> bool -> unit
(** Toggle page-checksum verification for every heap of this storage
    (automatically turned on by {!Faults.install}). *)

val verify_checksums : t -> bool

val io_stats : t -> Buffer_pool.stats
(** Global cumulative pool counters (all domains). *)

val reset_io : t -> unit
(** Zero the global counters.  Single-threaded cold-benchmark use only —
    never call while another domain may be measuring (see {!io_snapshot}). *)

val io_snapshot : t -> Buffer_pool.stats
(** The calling domain's cumulative IO tally; pair with {!io_since} to
    measure a window without touching shared state.  File-id allocation and
    all pool operations are domain-safe, so snapshots from concurrent
    workers never interfere. *)

val io_since : t -> Buffer_pool.stats -> Buffer_pool.stats
(** [io_since t before] — IO this domain incurred since [before] was
    taken with {!io_snapshot}. *)

val io_add_local : t -> Buffer_pool.stats -> unit
(** Credit IO measured on another domain (a morsel worker) to the calling
    domain's tally, so an enclosing {!io_snapshot}/{!io_since} window
    includes it.  Global counters are untouched (already counted). *)

(** {2 Table write path} *)

module Table : sig
  val insert : Heap_file.t -> Tuple.t list -> Page.rid list
  (** Append rows to a table's heap file in order, returning their rids
      (page IO charged through the pool; checksums maintained
      incrementally).  The storage layer only appends — keeping statistics,
      indexes and the catalog epoch in step is {!Catalog.insert}'s job, so
      callers should go through the catalog unless they are loading raw
      data. *)
end

(** {2 Fault injection}

    Installing a {!Fault.t} plan makes matching buffer-pool operations (heap,
    index and temp pages alike) raise typed {!Avq_error} errors, and turns
    page-checksum verification on so injected silent corruption is caught at
    fetch time. *)
module Faults : sig
  val install : t -> Fault.t -> unit
  val clear : t -> unit
  val plan : t -> Fault.t option
  val stats : t -> Buffer_pool.fault_stats
  val reset_stats : t -> unit
end
