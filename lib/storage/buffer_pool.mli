(** LRU buffer pool with physical-IO accounting.

    Every page access in the engine goes through a pool.  The pool does not
    hold page contents (those live in the heap files); it tracks *residency*:
    which (file, page) frames are cached, which are dirty, and how many
    physical reads and writes have occurred.  A miss on {!read} counts a
    physical read; evicting a dirty frame, or {!flush_all}, counts a physical
    write per dirty page.

    The pool is domain-safe: the LRU structure is protected by a mutex, the
    global counters are atomics, and every counted event is additionally
    tallied into a per-domain accumulator ({!local_stats}).  A worker domain
    executes one query at a time, so the growth of its own tally over a
    window is exactly the IO that query incurred — measurement by
    snapshot-and-subtract ({!diff}) instead of resetting shared counters,
    which would clobber concurrent measurements. *)

type t

type stats = {
  reads : int;    (** physical page reads (misses) *)
  writes : int;   (** physical page writes (dirty evictions + flushes) *)
  hits : int;     (** accesses served from the pool *)
}

val create : frames:int -> t
(** [create ~frames] makes a pool holding at most [frames] pages.
    @raise Invalid_argument if [frames < 1]. *)

val frames : t -> int

val read : t -> file:int -> page:int -> unit
(** Access an existing page for reading; loads it (counting a physical read)
    if absent.
    @raise Avq_error.Error if the installed fault plan fails this access (a
    faulted op counts no IO and leaves no frame behind). *)

val read_retrying : t -> file:int -> page:int -> unit
(** Like {!read}, but transient {!Avq_error.Io_fault}s are retried with
    exponential backoff up to the installed plan's [Fault.retries] budget.
    Exhausting the budget re-raises with [attempts] set to the total number
    of tries; [Corruption] is permanent and never retried.  Without a plan
    this is exactly {!read}.  When the plan sets [jitter], each wait is
    scaled by a seeded, reproducible per-(page, domain, attempt) factor so
    workers retrying the same hot page don't spin in lockstep. *)

val backoff_spins : ?jitter:float -> seed:int -> salt:int -> int -> int
(** [backoff_spins ?jitter ~seed ~salt attempt] — the exact spin count
    {!read_retrying} waits on its [attempt]-th retry (base [2^min attempt 10],
    scaled by a factor in [1-jitter, 1+jitter) drawn from
    {!Fault.hash_unit}[ seed salt attempt]).  Pure; exposed so tests can
    assert reproducibility and spread. *)

val write : t -> file:int -> page:int -> unit
(** Access an existing page for writing: like {!read} but marks the frame
    dirty. *)

val alloc : t -> file:int -> page:int -> unit
(** Register a freshly-allocated page: resident and dirty, no read counted. *)

val drop_file : t -> file:int -> unit
(** Discard all frames of [file] without writing them back (temp-file
    deletion). *)

val flush_all : t -> unit
(** Write back every dirty frame (each counts one physical write). *)

val clear : t -> unit
(** Empty the pool without counting any IO (simulates a cold cache before a
    measured run). *)

val stats : t -> stats
(** Global (cross-domain) cumulative counters. *)

val reset_stats : t -> unit
(** Zero the global counters.  Only meaningful on a quiescent,
    single-threaded pool (cold benchmark runs); per-domain tallies are
    monotonic and unaffected. *)

val io_total : t -> int
(** [reads + writes] — the cost-model's objective. *)

val local_stats : unit -> stats
(** Cumulative counters for IO charged by the {e calling domain} (across
    all pools; a domain drives one storage instance at a time).  Monotonic:
    never reset.  Measure a window with [diff (local_stats ()) before]. *)

val diff : stats -> stats -> stats
(** [diff now before] — componentwise subtraction. *)

val add_local : stats -> unit
(** Fold [s] into the calling domain's tally without touching the global
    atomics (those were already bumped by whichever domain did the IO).
    Used by the exchange operator to transfer morsel workers' IO to the
    consuming domain so snapshot-and-subtract measurement sees it. *)

val resident : t -> file:int -> page:int -> bool
val pp_stats : Format.formatter -> stats -> unit

(** {2 Fault injection}

    A {!Fault.t} plan installed on the pool makes matching operations raise
    typed {!Avq_error} errors at the exact layer where IO is counted. *)

val set_faults : t -> Fault.t option -> unit
(** Install (or with [None] remove) the fault plan.  Swap only between
    runs; the per-op decision state lives inside the plan itself. *)

val faults : t -> Fault.t option

type fault_stats = {
  injected : int;  (** typed faults raised (IO failures and corruptions) *)
  retried : int;  (** individual retry attempts spent *)
  recovered : int;  (** reads that succeeded after >= 1 retry *)
  exhausted : int;  (** reads that still failed after the retry budget *)
}

val fault_stats : t -> fault_stats
val reset_fault_stats : t -> unit
