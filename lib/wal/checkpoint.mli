(** Durable checkpoints: a consistent, atomically written snapshot of the
    catalog (tables with rows in exact heap order, keys, indexes, per-page
    checksums, write versions, foreign keys) and the matview registry.

    The write protocol is [checkpoint.tmp] → fsync → rename over
    [checkpoint.dat] → directory fsync, so a crash mid-checkpoint leaves
    the previous checkpoint intact.  [Buffer_pool.flush_all] runs first:
    the checkpoint is the moment every dirty frame reaches disk. *)

exception Corrupt of string

val file_name : string
(** ["checkpoint.dat"] within the data directory. *)

type table_snap = {
  ts_name : string;
  ts_columns : (string * Datatype.t) list;
  ts_pk : string list;
  ts_index : string list;  (** all indexed columns, for exact rebuild *)
  ts_cluster : string option;
  ts_version : int;  (** {!Catalog.table_version} at snapshot time *)
  ts_cksums : int array;  (** per-page content checksums at snapshot time *)
  ts_rows : Tuple.t list;  (** full width, exact heap order *)
}

type mv_snap = {
  ms_name : string;
  ms_sql : string;
  ms_maintain : bool;
  ms_versions : (string * int) list;
}

type snapshot = {
  last_lsn : int64;  (** WAL records at or below this are already applied *)
  epoch : int;
  tables : table_snap list;
  fks : (string * string * string * string) list;
      (** (fk_table, fk_column, pk_table, pk_column) *)
  matviews : mv_snap list;
}

val write : dir:string -> last_lsn:int64 -> Catalog.t -> Matview.t -> int
(** Snapshot the live catalog + registry into [dir]; returns the snapshot
    size in bytes. Must run with the catalog quiescent (the service holds
    its statement lock). *)

val load : dir:string -> snapshot option
(** [None] when no checkpoint exists yet.
    @raise Corrupt on a damaged or truncated checkpoint file. *)
