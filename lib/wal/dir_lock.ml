(* Exclusive data-directory lock: one [avq serve] per directory.

   Two defenses, because POSIX [lockf] record locks do not conflict between
   file descriptors of the SAME process (a second in-process acquire of the
   same directory would silently succeed, and worse, releasing either fd
   drops the lock):

   - an OS-level [F_TLOCK] on [<dir>/LOCK] guards against other processes
     (and is released by the kernel if the holder dies, so a crashed server
     never wedges its directory — the stale PID in the file is advisory);
   - an in-process registry of locked realpaths guards against a second
     acquire from this process.

   The PID is written into the file for operators ([cat data/LOCK] answers
   "who has it?"); it is never trusted for correctness. *)

type t = { fd : Unix.file_descr; path : string; real : string }

let locked_dirs : (string, unit) Hashtbl.t = Hashtbl.create 4
let registry = Mutex.create ()

let unavailable dir detail =
  Avq_error.Error
    (Avq_error.Unavailable
       (Printf.sprintf "data directory %s is locked%s" dir detail))

let acquire dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let real = try Unix.realpath dir with Unix.Unix_error _ -> dir in
  Mutex.protect registry (fun () ->
      if Hashtbl.mem locked_dirs real then
        raise (unavailable dir " (by this process)");
      Hashtbl.replace locked_dirs real ());
  let path = Filename.concat dir "LOCK" in
  let release_registry () =
    Mutex.protect registry (fun () -> Hashtbl.remove locked_dirs real)
  in
  match Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644 with
  | exception e ->
    release_registry ();
    raise e
  | fd -> (
    match Unix.lockf fd Unix.F_TLOCK 0 with
    | () ->
      (try
         ignore (Unix.ftruncate fd 0);
         let pid = Printf.sprintf "%d\n" (Unix.getpid ()) in
         ignore (Unix.write_substring fd pid 0 (String.length pid))
       with Unix.Unix_error _ -> ());
      { fd; path; real }
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
      let holder =
        try
          let ic = open_in path in
          let line = try String.trim (input_line ic) with End_of_file -> "" in
          close_in ic;
          if line = "" then "" else Printf.sprintf " (pid %s)" line
        with Sys_error _ -> ""
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      release_registry ();
      raise (unavailable dir holder)
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      release_registry ();
      raise e)

let release t =
  (* Removing the file first keeps the window where a fresh LOCK exists
     unlocked as small as possible; the unlock itself comes with the
     close. *)
  (try Sys.remove t.path with Sys_error _ -> ());
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  Mutex.protect registry (fun () -> Hashtbl.remove locked_dirs t.real)
