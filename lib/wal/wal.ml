(* Write-ahead log: binary, length-prefixed, CRC-checksummed records.

   On-disk layout: an 8-byte magic header, then a sequence of frames
   [u32 len][u32 crc][payload]; the CRC covers the payload only.  Every
   payload starts with the record's LSN (monotonic across checkpoints and
   restarts) and a tag byte.  A reader stops at the first frame that is
   short or fails its CRC — a torn tail is the expected shape of a crash
   mid-append and is reported, not raised. *)

let magic = "AVQWAL01"
let header_len = String.length magic

(* ---- CRC32 (IEEE 802.3) ---- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := t.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

(* ---- value / tuple codec (shared with Checkpoint) ---- *)

module Codec = struct
let add_u32 buf n = Buffer.add_int32_be buf (Int32.of_int n)
let add_i64 buf n = Buffer.add_int64_be buf n

let add_string buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let add_value buf (v : Value.t) =
  match v with
  | Value.Int n ->
    Buffer.add_char buf '\000';
    add_i64 buf (Int64.of_int n)
  | Value.Float f ->
    Buffer.add_char buf '\001';
    add_i64 buf (Int64.bits_of_float f)
  | Value.String s ->
    Buffer.add_char buf '\002';
    add_string buf s
  | Value.Bool b ->
    Buffer.add_char buf '\003';
    Buffer.add_char buf (if b then '\001' else '\000')
  | Value.Date d ->
    Buffer.add_char buf '\004';
    add_i64 buf (Int64.of_int d)

let add_rows buf rows =
  add_u32 buf (List.length rows);
  List.iter
    (fun row ->
      add_u32 buf (Array.length row);
      Array.iter (add_value buf) row)
    rows

exception Decode_error

type cursor = { src : string; mutable pos : int }

let need c n = if c.pos + n > String.length c.src then raise Decode_error

let get_u32 c =
  need c 4;
  let n = Int32.to_int (String.get_int32_be c.src c.pos) in
  c.pos <- c.pos + 4;
  if n < 0 then raise Decode_error;
  n

let get_i64 c =
  need c 8;
  let n = String.get_int64_be c.src c.pos in
  c.pos <- c.pos + 8;
  n

let get_byte c =
  need c 1;
  let b = Char.code c.src.[c.pos] in
  c.pos <- c.pos + 1;
  b

let get_string c =
  let n = get_u32 c in
  need c n;
  let s = String.sub c.src c.pos n in
  c.pos <- c.pos + n;
  s

let get_value c : Value.t =
  match get_byte c with
  | 0 -> Value.Int (Int64.to_int (get_i64 c))
  | 1 -> Value.Float (Int64.float_of_bits (get_i64 c))
  | 2 -> Value.String (get_string c)
  | 3 -> Value.Bool (get_byte c <> 0)
  | 4 -> Value.Date (Int64.to_int (get_i64 c))
  | _ -> raise Decode_error

let get_rows c =
  let n = get_u32 c in
  List.init n (fun _ ->
      let arity = get_u32 c in
      Array.init arity (fun _ -> get_value c))

let add_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')
let get_bool c = get_byte c <> 0

let add_opt add buf = function
  | None -> add_bool buf false
  | Some v ->
    add_bool buf true;
    add buf v

let get_opt get c = if get_bool c then Some (get c) else None

let add_list add buf xs =
  add_u32 buf (List.length xs);
  List.iter (add buf) xs

let get_list get c =
  let n = get_u32 c in
  List.init n (fun _ -> get c)
end

open Codec

(* ---- records ---- *)

type record =
  | Insert of { table : string; rows : Tuple.t list }
      (** rows in the bound (INSERT-visible) width; replay goes back through
          [Catalog.insert], which re-synthesizes hidden [_rid]s identically
          because replay preserves heap row order *)
  | Mv_delta of { view : string; table : string; rows : int }
      (** informational marker: an insert's delta was absorbed by [view];
          replay re-derives the absorption from the Insert record itself *)
  | Create_matview of { name : string; sql : string }
  | Drop_matview of string
  | Refresh_matview of string
  | Checkpoint_begin
  | Checkpoint_end of { ckpt_lsn : int64 }
  | Commit of int64  (** LSN of the data record this commit seals *)

let tag_of = function
  | Insert _ -> 1
  | Mv_delta _ -> 2
  | Create_matview _ -> 3
  | Drop_matview _ -> 4
  | Refresh_matview _ -> 5
  | Checkpoint_begin -> 6
  | Checkpoint_end _ -> 7
  | Commit _ -> 8

let record_name = function
  | Insert _ -> "insert"
  | Mv_delta _ -> "mv-delta"
  | Create_matview _ -> "create-matview"
  | Drop_matview _ -> "drop-matview"
  | Refresh_matview _ -> "refresh-matview"
  | Checkpoint_begin -> "checkpoint-begin"
  | Checkpoint_end _ -> "checkpoint-end"
  | Commit _ -> "commit"

let encode_payload ~lsn record =
  let buf = Buffer.create 64 in
  add_i64 buf lsn;
  Buffer.add_char buf (Char.chr (tag_of record));
  (match record with
   | Insert { table; rows } ->
     add_string buf table;
     add_rows buf rows
   | Mv_delta { view; table; rows } ->
     add_string buf view;
     add_string buf table;
     add_u32 buf rows
   | Create_matview { name; sql } ->
     add_string buf name;
     add_string buf sql
   | Drop_matview name -> add_string buf name
   | Refresh_matview name -> add_string buf name
   | Checkpoint_begin -> ()
   | Checkpoint_end { ckpt_lsn } -> add_i64 buf ckpt_lsn
   | Commit lsn' -> add_i64 buf lsn');
  Buffer.contents buf

let decode_payload payload =
  let c = { src = payload; pos = 0 } in
  let lsn = get_i64 c in
  let record =
    match get_byte c with
    | 1 ->
      let table = get_string c in
      Insert { table; rows = get_rows c }
    | 2 ->
      let view = get_string c in
      let table = get_string c in
      Mv_delta { view; table; rows = get_u32 c }
    | 3 ->
      let name = get_string c in
      Create_matview { name; sql = get_string c }
    | 4 -> Drop_matview (get_string c)
    | 5 -> Refresh_matview (get_string c)
    | 6 -> Checkpoint_begin
    | 7 -> Checkpoint_end { ckpt_lsn = get_i64 c }
    | 8 -> Commit (get_i64 c)
    | _ -> raise Decode_error
  in
  if c.pos <> String.length payload then raise Decode_error;
  (lsn, record)

let encode ~lsn record =
  let payload = encode_payload ~lsn record in
  let buf = Buffer.create (8 + String.length payload) in
  add_u32 buf (String.length payload);
  add_u32 buf (crc32 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* ---- reading ---- *)

type read_result = {
  records : (int64 * record) list;
  torn : bool;  (** trailing bytes that do not parse as a whole record *)
  valid_bytes : int;  (** length of the parseable prefix (incl. header) *)
}

let read_all path =
  if not (Sys.file_exists path) then
    { records = []; torn = false; valid_bytes = 0 }
  else begin
    let src = In_channel.with_open_bin path In_channel.input_all in
    let n = String.length src in
    if n < header_len || String.sub src 0 header_len <> magic then
      { records = []; torn = n > 0; valid_bytes = 0 }
    else begin
      let records = ref [] in
      let pos = ref header_len in
      let stop = ref false in
      while not !stop do
        if !pos + 8 > n then stop := true
        else begin
          let len = Int32.to_int (String.get_int32_be src !pos) in
          let crc = Int32.to_int (String.get_int32_be src (!pos + 4)) land 0xffffffff in
          if len < 0 || !pos + 8 + len > n then stop := true
          else begin
            let payload = String.sub src (!pos + 8) len in
            if crc32 payload <> crc then stop := true
            else
              match decode_payload payload with
              | lsn, r ->
                records := (lsn, r) :: !records;
                pos := !pos + 8 + len
              | exception Decode_error -> stop := true
          end
        end
      done;
      { records = List.rev !records; torn = !pos < n; valid_bytes = !pos }
    end
  end

(* ---- crash-point scripting (torture harness) ----

   Spec grammar, in the spirit of [Fault.parse]:
   {v at=<n>+<n>+..[;torn] v}
   The writer SIGKILLs its own process just after the [n]-th frame it
   appends (1-based, commits and checkpoint markers count too); with
   [torn], only a prefix of that frame's bytes reaches the file first —
   simulating a crash mid-write that leaves a torn tail. *)

type crash = { crash_at : int list; crash_torn : bool }

let parse_crash spec =
  let entries =
    String.split_on_char ';' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let at = ref [] and torn = ref false and err = ref None in
  List.iter
    (fun entry ->
      if !err = None then
        match entry with
        | "torn" -> torn := true
        | _ -> (
          match String.index_opt entry '=' with
          | Some i when String.sub entry 0 i = "at" ->
            let v = String.sub entry (i + 1) (String.length entry - i - 1) in
            let parts = String.split_on_char '+' v in
            let ns = List.filter_map int_of_string_opt parts in
            if
              List.length ns <> List.length parts
              || ns = []
              || List.exists (fun n -> n < 1) ns
            then
              err :=
                Some (Printf.sprintf "at expects 1-based <n>+<n>+.., got %S" v)
            else at := !at @ ns
          | _ -> err := Some (Printf.sprintf "unknown crash entry %S" entry)))
    entries;
  match !err with
  | Some e -> Error e
  | None ->
    if !at = [] then Error "crash plan has no at= points"
    else Ok { crash_at = !at; crash_torn = !torn }

(* ---- writer ---- *)

type fsync_mode = Fsync_always | Fsync_group of float | Fsync_never

type wstats = {
  records : int;
  commits : int;
  bytes : int;  (** current log size, header included *)
  fsyncs : int;
  deferred : int;  (** commits whose fsync was deferred (group / never) *)
  truncations : int;
  appended_bytes : int;  (** cumulative bytes appended; survives truncation *)
}

type writer = {
  fd : Unix.file_descr;
  wpath : string;
  mode : fsync_mode;
  mutable next_lsn : int64;
  mutable size : int;
  mutable dirty : bool;
  mutable last_sync : float;
  mutable wrecords : int;
  mutable wcommits : int;
  mutable wfsyncs : int;
  mutable wdeferred : int;
  mutable wtruncations : int;
  mutable crash_plan : crash option;
  mutable appends : int;
  mutable wappended_bytes : int;
  mutable closed : bool;
}

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write fd b !sent (n - !sent)
  done

let fsync w =
  Unix.fsync w.fd;
  w.wfsyncs <- w.wfsyncs + 1;
  w.dirty <- false;
  w.last_sync <- Unix.gettimeofday ()

(* Opening scans the existing log: a torn tail is cut off (those bytes were
   never part of a committed record) and the LSN counter resumes after the
   highest surviving LSN, so LSNs stay monotonic across restarts. *)
let open_writer ?(fsync_mode = Fsync_always) ?(lsn_floor = 0L) path =
  let existing = read_all path in
  let next_lsn =
    List.fold_left
      (fun acc (lsn, _) -> if Int64.compare lsn acc >= 0 then Int64.succ lsn else acc)
      (Int64.succ lsn_floor) existing.records
  in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let size =
    if existing.valid_bytes = 0 then begin
      Unix.ftruncate fd 0;
      write_all fd magic;
      header_len
    end
    else begin
      Unix.ftruncate fd existing.valid_bytes;
      ignore (Unix.lseek fd existing.valid_bytes Unix.SEEK_SET);
      existing.valid_bytes
    end
  in
  Unix.fsync fd;
  {
    fd;
    wpath = path;
    mode = fsync_mode;
    next_lsn;
    size;
    dirty = false;
    last_sync = Unix.gettimeofday ();
    wrecords = 0;
    wcommits = 0;
    wfsyncs = 0;
    wdeferred = 0;
    wtruncations = 0;
    crash_plan = None;
    appends = 0;
    wappended_bytes = 0;
    closed = false;
  }

let set_crash w plan = w.crash_plan <- plan
let path w = w.wpath
let size w = w.size
let last_lsn w = Int64.pred w.next_lsn
let fsync_mode w = w.mode

let stats w =
  {
    records = w.wrecords;
    commits = w.wcommits;
    bytes = w.size;
    fsyncs = w.wfsyncs;
    deferred = w.wdeferred;
    truncations = w.wtruncations;
    appended_bytes = w.wappended_bytes;
  }

let die_here w ~frame ~torn =
  (* A scripted crash: optionally leave a torn prefix of the frame, force
     it to disk so recovery really sees it, then go down hard. *)
  if torn then begin
    let cut = max 1 (String.length frame / 2) in
    write_all w.fd (String.sub frame 0 cut)
  end
  else write_all w.fd frame;
  Unix.fsync w.fd;
  Unix.kill (Unix.getpid ()) Sys.sigkill

let raw_append w record =
  if w.closed then invalid_arg "Wal: append on a closed writer";
  let lsn = w.next_lsn in
  let frame = encode ~lsn record in
  w.appends <- w.appends + 1;
  (match w.crash_plan with
   | Some c when List.mem w.appends c.crash_at ->
     die_here w ~frame ~torn:c.crash_torn
   | _ -> ());
  write_all w.fd frame;
  w.next_lsn <- Int64.succ lsn;
  w.size <- w.size + String.length frame;
  w.wappended_bytes <- w.wappended_bytes + String.length frame;
  w.dirty <- true;
  w.wrecords <- w.wrecords + 1;
  lsn

(* Data records are written but not forced; durability is decided at the
   commit record (see [commit]).  [Fsync_always] still forces every append
   so the write-ahead invariant holds even against power-cut semantics. *)
let append w record =
  let lsn = raw_append w record in
  (match w.mode with Fsync_always -> fsync w | _ -> ());
  lsn

let commit w data_lsn =
  ignore (raw_append w (Commit data_lsn));
  w.wcommits <- w.wcommits + 1;
  (match w.mode with
   | Fsync_always -> fsync w
   | Fsync_group window_ms ->
     if Unix.gettimeofday () -. w.last_sync >= window_ms /. 1000. then fsync w
     else w.wdeferred <- w.wdeferred + 1
   | Fsync_never -> w.wdeferred <- w.wdeferred + 1)

let flush w = if w.dirty then fsync w

(* After a checkpoint the whole prefix is redundant: cut the log back to its
   header.  LSNs keep counting — recovery skips anything at or below the
   checkpoint's [ckpt_lsn], so replay stays idempotent even if the
   truncation itself is lost. *)
let truncate w =
  flush w;
  Unix.ftruncate w.fd header_len;
  ignore (Unix.lseek w.fd header_len Unix.SEEK_SET);
  w.size <- header_len;
  w.wtruncations <- w.wtruncations + 1;
  Unix.fsync w.fd

let close w =
  if not w.closed then begin
    flush w;
    w.closed <- true;
    try Unix.close w.fd with Unix.Unix_error _ -> ()
  end
