(** Redo recovery at startup: load the last checkpoint (or seed the
    workload when none exists), replay the WAL tail idempotently, and hand
    back an open writer positioned after everything recovered.

    Replay is commit-gated — a data record is applied only if a [Commit]
    sealing its LSN reached disk; anything else was never acknowledged to a
    client and is dropped, so recovered state is always a statement
    boundary ("view either old or new, never partial").  Torn WAL tails
    are cut off gracefully, and restored heap pages are verified against
    the checkpoint's per-page checksums. *)

exception Error of string
(** Refusals: a data directory created for a different workload identity,
    or a path that is not a directory. *)

val wal_name : string
(** ["wal.log"] within the data directory. *)

type stats = {
  checkpoint_loaded : bool;
  tables_restored : int;
  matviews_restored : int;
  replayed : int;  (** committed data records applied *)
  skipped : int;  (** data records covered by the checkpoint or uncommitted *)
  torn : bool;  (** the WAL ended in a torn record (cut off) *)
  wal_bytes : int;  (** parseable WAL bytes scanned *)
  duration_ms : float;
}

val wal_path : data_dir:string -> string

val recover :
  data_dir:string ->
  ?fsync_mode:Wal.fsync_mode ->
  ?meta:string ->
  seed:(unit -> Catalog.t) ->
  unit ->
  Catalog.t * Matview.t * Wal.writer * stats
(** [meta] pins the directory to a workload identity (e.g.
    ["db=emp_dept;scale=1;seed=42"]): written on first open, compared on
    every later one.
    @raise Error on an identity mismatch.
    @raise Checkpoint.Corrupt on a damaged checkpoint or page-checksum
    divergence. *)
