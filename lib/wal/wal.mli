(** Write-ahead log: binary, length-prefixed, CRC32-checksummed records.

    File layout: 8-byte magic ["AVQWAL01"], then frames
    [[u32 len][u32 crc][payload]] where [payload] is [[i64 lsn][u8 tag][body]].
    Readers stop gracefully at the first short or corrupt frame — a torn
    tail is the normal residue of a crash mid-append. *)

type record =
  | Insert of { table : string; rows : Tuple.t list }
      (** rows in the bound (INSERT-visible) width; replay re-runs
          [Catalog.insert], which re-synthesizes hidden [_rid]s identically *)
  | Mv_delta of { view : string; table : string; rows : int }
      (** informational: an insert delta was absorbed into [view] *)
  | Create_matview of { name : string; sql : string }
  | Drop_matview of string
  | Refresh_matview of string
  | Checkpoint_begin
  | Checkpoint_end of { ckpt_lsn : int64 }
  | Commit of int64  (** seals the data record with this LSN *)

val record_name : record -> string

val encode : lsn:int64 -> record -> string
(** Full frame bytes ([len ^ crc ^ payload]) — exposed for tests that craft
    torn or corrupted tails by hand. *)

val crc32 : string -> int

(** Binary primitives shared with {!Checkpoint} (big-endian, tagged
    values). *)
module Codec : sig
  exception Decode_error

  type cursor = { src : string; mutable pos : int }

  val add_u32 : Buffer.t -> int -> unit
  val add_i64 : Buffer.t -> int64 -> unit
  val add_string : Buffer.t -> string -> unit
  val add_bool : Buffer.t -> bool -> unit
  val add_value : Buffer.t -> Value.t -> unit
  val add_rows : Buffer.t -> Tuple.t list -> unit
  val add_opt : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a option -> unit
  val add_list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit
  val get_u32 : cursor -> int
  val get_i64 : cursor -> int64
  val get_string : cursor -> string
  val get_bool : cursor -> bool
  val get_byte : cursor -> int
  val get_value : cursor -> Value.t
  val get_rows : cursor -> Tuple.t list
  val get_opt : (cursor -> 'a) -> cursor -> 'a option
  val get_list : (cursor -> 'a) -> cursor -> 'a list
end

(** {1 Reading} *)

type read_result = {
  records : (int64 * record) list;  (** parseable prefix, in log order *)
  torn : bool;  (** trailing bytes did not form a whole valid record *)
  valid_bytes : int;  (** length of the parseable prefix, header included *)
}

val read_all : string -> read_result
(** Never raises on torn/corrupt input; a missing file reads as empty. *)

(** {1 Crash-point scripting (torture harness)} *)

type crash = { crash_at : int list; crash_torn : bool }

val parse_crash : string -> (crash, string) result
(** Grammar: [at=<n>+<n>..][;torn] — SIGKILL the process on the n-th frame
    appended (1-based; commits and checkpoint markers count). With [torn],
    only a prefix of that frame reaches the file first. *)

(** {1 Writer} *)

type fsync_mode =
  | Fsync_always  (** fsync every append — full write-ahead durability *)
  | Fsync_group of float
      (** group commit: fsync at most once per window (milliseconds) *)
  | Fsync_never  (** fsync only on [flush]/[truncate]/[close] *)

type writer

type wstats = {
  records : int;
  commits : int;
  bytes : int;  (** current log size, header included *)
  fsyncs : int;
  deferred : int;  (** commits whose fsync was deferred (group / never) *)
  truncations : int;
  appended_bytes : int;  (** cumulative bytes appended; survives truncation *)
}

val open_writer : ?fsync_mode:fsync_mode -> ?lsn_floor:int64 -> string -> writer
(** Creates the file (with header) if absent. An existing log is scanned:
    any torn tail is truncated away and the LSN counter resumes after the
    highest surviving LSN and past [lsn_floor] (pass the checkpoint's
    [last_lsn] — a checkpoint truncates the log, so the log alone cannot
    remember how far the counter got). Default mode is [Fsync_always]. *)

val append : writer -> record -> int64
(** Append one record, returning its LSN. Forces to disk only under
    [Fsync_always]; durability is otherwise decided at [commit]. *)

val commit : writer -> int64 -> unit
(** Append a [Commit] sealing the given data LSN, then fsync per mode. *)

val flush : writer -> unit
(** Force any buffered appends to disk. *)

val truncate : writer -> unit
(** Cut the log back to its header (after a checkpoint). LSNs keep
    counting, so replay stays idempotent even if the truncation is lost. *)

val close : writer -> unit
val set_crash : writer -> crash option -> unit
val path : writer -> string
val size : writer -> int
val last_lsn : writer -> int64
val fsync_mode : writer -> fsync_mode
val stats : writer -> wstats
