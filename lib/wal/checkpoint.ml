(* Durable checkpoints: one self-contained snapshot of the catalog (tables
   with rows in exact heap order, keys, indexes, clustering, per-page
   checksums, write versions, foreign keys) plus the matview registry
   (definition SQL, maintenance flag, absorbed versions).

   On disk: 8-byte magic, then a single [u32 len][u32 crc][body] frame —
   the whole snapshot is checksummed as one unit.  Writes are atomic:
   serialize to [checkpoint.tmp], fsync, rename over [checkpoint.dat],
   fsync the directory.  A crash mid-checkpoint leaves the previous
   checkpoint intact. *)

open Wal.Codec

let magic = "AVQCKPT1"
let file_name = "checkpoint.dat"
let tmp_name = "checkpoint.tmp"

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

type table_snap = {
  ts_name : string;
  ts_columns : (string * Datatype.t) list;
  ts_pk : string list;
  ts_index : string list;
  ts_cluster : string option;
  ts_version : int;
  ts_cksums : int array;  (** per-page content checksums at snapshot time *)
  ts_rows : Tuple.t list;  (** full width, exact heap order *)
}

type mv_snap = {
  ms_name : string;
  ms_sql : string;
  ms_maintain : bool;
  ms_versions : (string * int) list;
}

type snapshot = {
  last_lsn : int64;  (** WAL records at or below this are already applied *)
  epoch : int;
  tables : table_snap list;
  fks : (string * string * string * string) list;
      (** (fk_table, fk_column, pk_table, pk_column) *)
  matviews : mv_snap list;
}

(* ---- codec ---- *)

let dt_tag = function
  | Datatype.Int -> 0
  | Datatype.Float -> 1
  | Datatype.String -> 2
  | Datatype.Bool -> 3
  | Datatype.Date -> 4

let dt_of_tag = function
  | 0 -> Datatype.Int
  | 1 -> Datatype.Float
  | 2 -> Datatype.String
  | 3 -> Datatype.Bool
  | 4 -> Datatype.Date
  | n -> corrupt "unknown datatype tag %d" n

let add_table buf ts =
  add_string buf ts.ts_name;
  add_list
    (fun buf (n, ty) ->
      add_string buf n;
      Buffer.add_char buf (Char.chr (dt_tag ty)))
    buf ts.ts_columns;
  add_list add_string buf ts.ts_pk;
  add_list add_string buf ts.ts_index;
  add_opt add_string buf ts.ts_cluster;
  add_u32 buf ts.ts_version;
  add_list (fun buf ck -> add_i64 buf (Int64.of_int ck)) buf
    (Array.to_list ts.ts_cksums);
  add_rows buf ts.ts_rows

let get_table c =
  let ts_name = get_string c in
  let ts_columns =
    get_list
      (fun c ->
        let n = get_string c in
        (n, dt_of_tag (get_byte c)))
      c
  in
  let ts_pk = get_list get_string c in
  let ts_index = get_list get_string c in
  let ts_cluster = get_opt get_string c in
  let ts_version = get_u32 c in
  let ts_cksums =
    Array.of_list (get_list (fun c -> Int64.to_int (get_i64 c)) c)
  in
  let ts_rows = get_rows c in
  { ts_name; ts_columns; ts_pk; ts_index; ts_cluster; ts_version; ts_cksums;
    ts_rows }

let add_mv buf ms =
  add_string buf ms.ms_name;
  add_string buf ms.ms_sql;
  add_bool buf ms.ms_maintain;
  add_list
    (fun buf (tb, v) ->
      add_string buf tb;
      add_u32 buf v)
    buf ms.ms_versions

let get_mv c =
  let ms_name = get_string c in
  let ms_sql = get_string c in
  let ms_maintain = get_bool c in
  let ms_versions =
    get_list
      (fun c ->
        let tb = get_string c in
        (tb, get_u32 c))
      c
  in
  { ms_name; ms_sql; ms_maintain; ms_versions }

let encode snap =
  let buf = Buffer.create 4096 in
  add_i64 buf snap.last_lsn;
  add_u32 buf snap.epoch;
  add_list add_table buf snap.tables;
  add_list
    (fun buf (a, b, cc, d) ->
      add_string buf a;
      add_string buf b;
      add_string buf cc;
      add_string buf d)
    buf snap.fks;
  add_list add_mv buf snap.matviews;
  Buffer.contents buf

let decode body =
  let c = { src = body; pos = 0 } in
  let last_lsn = get_i64 c in
  let epoch = get_u32 c in
  let tables = get_list get_table c in
  let fks =
    get_list
      (fun c ->
        let a = get_string c in
        let b = get_string c in
        let cc = get_string c in
        let d = get_string c in
        (a, b, cc, d))
      c
  in
  let matviews = get_list get_mv c in
  if c.pos <> String.length body then corrupt "trailing bytes in checkpoint";
  { last_lsn; epoch; tables; fks; matviews }

(* ---- snapshotting a live catalog ---- *)

(* Synthesized system views ([avq_stat_*], [avq_server_*]) are rebuilt from
   live state on every read and may legitimately be empty — they are not
   durable state, and [restore_table] would reject their empty snapshots. *)
let is_system_table name =
  let has_prefix p =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  has_prefix "avq_stat_" || has_prefix "avq_server_"

let snap_of ~last_lsn cat mviews =
  let tables =
    List.filter
      (fun (tbl : Catalog.table) -> not (is_system_table tbl.Catalog.tname))
      (Catalog.tables cat)
  in
  let tables =
    List.map
      (fun (tbl : Catalog.table) ->
        { ts_name = tbl.Catalog.tname;
          ts_columns =
            List.map
              (fun col -> (col.Schema.cname, col.Schema.cty))
              (Schema.columns tbl.Catalog.tschema);
          ts_pk = tbl.Catalog.primary_key;
          ts_index = List.map fst tbl.Catalog.indexes;
          ts_cluster = tbl.Catalog.clustered;
          ts_version = Catalog.table_version cat tbl.Catalog.tname;
          ts_cksums = Heap_file.page_checksums tbl.Catalog.heap;
          ts_rows = List.of_seq (Heap_file.to_seq tbl.Catalog.heap) })
      tables
  in
  let fks =
    List.map
      (fun fk ->
        ( fk.Catalog.fk_table, fk.Catalog.fk_column, fk.Catalog.pk_table,
          fk.Catalog.pk_column ))
      (Catalog.foreign_keys cat)
  in
  let matviews =
    List.map
      (fun (v : Matview.view) ->
        { ms_name = v.Matview.mv_name;
          ms_sql = v.Matview.mv_sql;
          ms_maintain = v.Matview.mv_maintain;
          ms_versions = v.Matview.mv_versions })
      (Matview.views mviews)
  in
  { last_lsn; epoch = Catalog.epoch cat; tables; fks; matviews }

(* ---- file IO ---- *)

let write_file path s =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let b = Bytes.unsafe_of_string s in
      let n = Bytes.length b in
      let sent = ref 0 in
      while !sent < n do
        sent := !sent + Unix.write fd b !sent (n - !sent)
      done;
      Unix.fsync fd)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* Flush the buffer pool first (the issue's protocol: a checkpoint is the
   moment everything dirty reaches "disk"), then write the snapshot frame
   atomically. Returns the snapshot size in bytes. *)
let write ~dir ~last_lsn cat mviews =
  Buffer_pool.flush_all (Storage.pool (Catalog.storage cat));
  let body = encode (snap_of ~last_lsn cat mviews) in
  let buf = Buffer.create (String.length body + 16) in
  Buffer.add_string buf magic;
  add_u32 buf (String.length body);
  add_u32 buf (Wal.crc32 body);
  Buffer.add_string buf body;
  let bytes = Buffer.contents buf in
  let tmp = Filename.concat dir tmp_name in
  write_file tmp bytes;
  Unix.rename tmp (Filename.concat dir file_name);
  fsync_dir dir;
  String.length bytes

let load ~dir =
  let path = Filename.concat dir file_name in
  if not (Sys.file_exists path) then None
  else begin
    let src = In_channel.with_open_bin path In_channel.input_all in
    let hn = String.length magic in
    if String.length src < hn + 8 || String.sub src 0 hn <> magic then
      corrupt "bad checkpoint header in %s" path;
    let len = Int32.to_int (String.get_int32_be src hn) in
    let crc = Int32.to_int (String.get_int32_be src (hn + 4)) land 0xffffffff in
    if len < 0 || hn + 8 + len > String.length src then
      corrupt "truncated checkpoint %s" path;
    let body = String.sub src (hn + 8) len in
    if Wal.crc32 body <> crc then corrupt "checkpoint CRC mismatch in %s" path;
    match decode body with
    | snap -> Some snap
    | exception Wal.Codec.Decode_error -> corrupt "undecodable checkpoint %s" path
  end
