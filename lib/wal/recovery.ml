(* Redo recovery: load the last checkpoint (or the seed workload when none
   exists), then replay the WAL tail idempotently.

   Replay is commit-gated: a data record is applied only if a [Commit]
   sealing its LSN made it to disk — an uncommitted record belongs to a
   statement that was never acknowledged, so dropping it is exactly the
   "view either old or new, never partial" guarantee.  Records at or below
   the checkpoint's [last_lsn] are already reflected in the snapshot and
   are skipped, which keeps replay idempotent even when a post-checkpoint
   WAL truncation was lost.  A torn tail (crash mid-append) is cut off
   silently; it can only hold unacknowledged work. *)

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let wal_name = "wal.log"
let meta_name = "meta"

type stats = {
  checkpoint_loaded : bool;
  tables_restored : int;
  matviews_restored : int;
  replayed : int;  (** committed data records applied *)
  skipped : int;  (** data records covered by the checkpoint or uncommitted *)
  torn : bool;  (** the WAL ended in a torn record (cut off) *)
  wal_bytes : int;  (** parseable WAL bytes scanned *)
  duration_ms : float;
}

let wal_path ~data_dir = Filename.concat data_dir wal_name

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then err "data dir %s is not a directory" dir

(* The meta file pins the data directory to one workload identity
   (db/scale/seed): recovering emp_dept WAL records into a tpcd seed would
   corrupt silently, so mismatches refuse loudly instead. *)
let check_meta ~data_dir meta =
  match meta with
  | None -> ()
  | Some m ->
    let path = Filename.concat data_dir meta_name in
    if Sys.file_exists path then begin
      let existing =
        String.trim (In_channel.with_open_bin path In_channel.input_all)
      in
      if existing <> m then
        err "data dir %s was created for %S, refusing to open as %S" data_dir
          existing m
    end
    else
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (m ^ "\n"))

let restore_from_checkpoint snap =
  let cat = Catalog.create () in
  List.iter
    (fun ts ->
      let tbl =
        Catalog.restore_table cat ~name:ts.Checkpoint.ts_name
          ~columns:ts.Checkpoint.ts_columns ~pk:ts.Checkpoint.ts_pk
          ~index:ts.Checkpoint.ts_index ?cluster:ts.Checkpoint.ts_cluster
          ts.Checkpoint.ts_rows
      in
      (* The snapshot carries the checksums the writer maintained; the
         restored heap recomputed its own over the reloaded rows.  Any
         difference means the snapshot rows were damaged at rest. *)
      let got = Heap_file.page_checksums tbl.Catalog.heap in
      if got <> ts.Checkpoint.ts_cksums then
        raise
          (Checkpoint.Corrupt
             (Printf.sprintf "table %s: page checksums diverge after restore"
                ts.Checkpoint.ts_name));
      Catalog.set_table_version cat ts.Checkpoint.ts_name
        ts.Checkpoint.ts_version)
    snap.Checkpoint.tables;
  List.iter
    (fun (ft, fc, pt, pc) ->
      Catalog.restore_foreign_key cat
        { Catalog.fk_table = ft; fk_column = fc; pk_table = pt; pk_column = pc })
    snap.Checkpoint.fks;
  let mviews = Matview.create () in
  List.iter
    (fun ms ->
      let def =
        Binder.bind_matview_body cat ~name:ms.Checkpoint.ms_name
          (Parser.parse_select ms.Checkpoint.ms_sql)
      in
      ignore
        (Matview.restore cat mviews ~name:ms.Checkpoint.ms_name
           ~sql:ms.Checkpoint.ms_sql ~maintain:ms.Checkpoint.ms_maintain
           ~versions:ms.Checkpoint.ms_versions def))
    snap.Checkpoint.matviews;
  (cat, mviews)

let apply_record cat mviews = function
  | Wal.Insert { table; rows } ->
    (* [Catalog.insert] re-synthesizes any hidden [_rid]s: the heap has the
       same row count it had when the statement originally ran, so the ids
       come out identical.  Maintenance then sees the same stored rows. *)
    let stored = Catalog.insert cat ~table rows in
    Matview.on_insert cat mviews ~table ~rows:stored
  | Wal.Create_matview { name; sql } ->
    let def = Binder.bind_matview_body cat ~name (Parser.parse_select sql) in
    ignore (Matview.create_view cat mviews ~name ~sql def)
  | Wal.Drop_matview name -> Matview.drop cat mviews name
  | Wal.Refresh_matview name -> Matview.refresh cat mviews name
  | Wal.Mv_delta _ | Wal.Checkpoint_begin | Wal.Checkpoint_end _ | Wal.Commit _
    ->
    ()

let is_data = function
  | Wal.Insert _ | Wal.Create_matview _ | Wal.Drop_matview _
  | Wal.Refresh_matview _ ->
    true
  | Wal.Mv_delta _ | Wal.Checkpoint_begin | Wal.Checkpoint_end _ | Wal.Commit _
    ->
    false

let recover ~data_dir ?(fsync_mode = Wal.Fsync_always) ?meta ~seed () =
  let t0 = Unix.gettimeofday () in
  ensure_dir data_dir;
  check_meta ~data_dir meta;
  let wal = Wal.read_all (wal_path ~data_dir) in
  let snap = Checkpoint.load ~dir:data_dir in
  let (cat, mviews), ckpt_lsn, ntables, nmvs =
    match snap with
    | Some s ->
      ( restore_from_checkpoint s,
        s.Checkpoint.last_lsn,
        List.length s.Checkpoint.tables,
        List.length s.Checkpoint.matviews )
    | None -> ((seed (), Matview.create ()), 0L, 0, 0)
  in
  let committed = Hashtbl.create 64 in
  List.iter
    (fun (_, r) ->
      match r with
      | Wal.Commit data_lsn -> Hashtbl.replace committed data_lsn ()
      | _ -> ())
    wal.Wal.records;
  let replayed = ref 0 and skipped = ref 0 in
  List.iter
    (fun (lsn, r) ->
      if is_data r then
        if Int64.compare lsn ckpt_lsn > 0 && Hashtbl.mem committed lsn then begin
          apply_record cat mviews r;
          incr replayed
        end
        else incr skipped)
    wal.Wal.records;
  (* Opening the writer truncates any torn tail and resumes the LSN counter
     past everything the log (and via [ckpt_lsn] the checkpoint) has seen. *)
  let writer =
    Wal.open_writer ~fsync_mode ~lsn_floor:ckpt_lsn (wal_path ~data_dir)
  in
  let stats =
    { checkpoint_loaded = snap <> None;
      tables_restored = ntables;
      matviews_restored = nmvs;
      replayed = !replayed;
      skipped = !skipped;
      torn = wal.Wal.torn;
      wal_bytes = wal.Wal.valid_bytes;
      duration_ms = (Unix.gettimeofday () -. t0) *. 1000. }
  in
  (cat, mviews, writer, stats)
