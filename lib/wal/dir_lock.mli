(** Exclusive data-directory lock: one server per directory.

    {!acquire} takes an OS-level exclusive lock on [<dir>/LOCK] (created if
    needed, directory too) and records the holder's PID in it for
    operators.  A second acquire — from another process or this one —
    raises [Avq_error.Error (Unavailable _)] naming the directory and, when
    readable, the holding PID.  The kernel releases the OS lock if the
    holder dies, so a crashed server never wedges its directory; the PID
    left in a stale file is advisory only. *)

type t

val acquire : string -> t
(** @raise Avq_error.Error [Unavailable] when the directory is already
    locked.  Other [Unix.Unix_error]s (permissions, read-only fs)
    propagate. *)

val release : t -> unit
(** Remove the lock file and drop the lock.  Also called implicitly by the
    kernel on process exit. *)
