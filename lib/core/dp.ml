type access =
  | A_base of { alias : string; table : string }
  | A_derived of { plan : Physical.t; out_key : Schema.column list option }

type item = { covers : string list; access : access }

type input = {
  items : item list;
  preds : Expr.pred list;
  group : Grouping.group_spec option;
  early_grouping : bool;
  bushy : bool;
}

type gtag =
  | Ungrouped
  | Grouped_final
  | Grouped_partial of Grouping.coalesce

type entry = { plan : Physical.t; est : Cost_model.est; tag : gtag }

let tag_kind = function
  | Ungrouped -> 0
  | Grouped_final -> 1
  | Grouped_partial _ -> 2

let key_name (c : Schema.column) = (c.Schema.cqual, c.Schema.cname)

let rec is_prefix small big =
  match small, big with
  | [], _ -> true
  | _, [] -> false
  | (q, n) :: s, (q', n') :: b ->
    String.equal q q' && String.equal n n' && is_prefix s b

(* ------------------------------------------------------------------ *)

let finish_partial (spec : Grouping.group_spec) (c : Grouping.coalesce) plan =
  let having_inline = c.Grouping.post = [] in
  let g1 =
    Physical.Hash_group
      {
        input = plan;
        agg_qual = spec.Grouping.gs_qual;
        keys = spec.Grouping.gs_keys;
        aggs = c.Grouping.combine_aggs;
        having = (if having_inline then spec.Grouping.gs_having else []);
      }
  in
  if having_inline then g1
  else begin
    (* Recombine (AVG) and restore the original output columns, then filter. *)
    let key_cols = List.map (fun k -> (Expr.Col k, k)) spec.Grouping.gs_keys in
    let agg_cols =
      List.map
        (fun (a : Aggregate.t) ->
          let out =
            Schema.column ~qual:spec.Grouping.gs_qual a.Aggregate.out_name
              (Aggregate.result_type a)
          in
          match
            List.find_opt
              (fun (_, name) -> String.equal name a.Aggregate.out_name)
              c.Grouping.post
          with
          | Some (e, _) -> (e, out)
          | None -> (Expr.Col out, out))
        spec.Grouping.gs_aggs
    in
    let projected = Physical.Project { input = g1; cols = key_cols @ agg_cols } in
    match spec.Grouping.gs_having with
    | [] -> projected
    | having -> Physical.Filter { input = projected; pred = having }
  end

(* ------------------------------------------------------------------ *)

let optimize cat ~work_mem input =
  let n = List.length input.items in
  if n = 0 then invalid_arg "Dp.optimize: no items";
  if n > 20 then invalid_arg "Dp.optimize: too many items";
  let items = Array.of_list input.items in
  let estimate p = Cost_model.estimate cat ~work_mem p in
  let full_mask = (1 lsl n) - 1 in
  (* alias -> item bit *)
  let alias_bit =
    let tbl = Hashtbl.create 16 in
    Array.iteri
      (fun i it -> List.iter (fun a -> Hashtbl.replace tbl a (1 lsl i)) it.covers)
      items;
    tbl
  in
  let needed_mask p =
    List.fold_left
      (fun acc q ->
        match Hashtbl.find_opt alias_bit q with
        | Some b -> acc lor b
        | None ->
          invalid_arg
            (Printf.sprintf "Dp.optimize: predicate references unknown alias %s" q))
      0 (Expr.qualifiers p)
  in
  let preds = List.map (fun p -> (p, needed_mask p)) input.preds in
  let covered_aliases mask =
    let acc = ref [] in
    Array.iteri (fun i it -> if mask land (1 lsl i) <> 0 then acc := it.covers @ !acc) items;
    !acc
  in
  let leaf_filters j =
    (* Constant predicates (no column references) are attached to item 0. *)
    List.filter_map
      (fun (p, m) -> if m = 1 lsl j || (m = 0 && j = 0) then Some p else None)
      preds
  in
  let applicable_preds_mask left_mask right_mask =
    List.filter_map
      (fun (p, m) ->
        if
          m land lnot (left_mask lor right_mask) = 0
          && m land lnot left_mask <> 0
          && m land lnot right_mask <> 0
        then Some p
        else None)
      preds
  in
  let applicable_preds mask j = applicable_preds_mask mask (1 lsl j) in
  let remaining_preds mask =
    List.filter_map
      (fun (p, m) -> if m land lnot mask <> 0 then Some p else None)
      preds
  in
  let remaining_items mask =
    let acc = ref [] in
    Array.iteri
      (fun i it ->
        if mask land (1 lsl i) = 0 then begin
          let key =
            match it.access with
            | A_base { alias; table } ->
              let tbl = Catalog.table_exn cat table in
              (match tbl.Catalog.primary_key with
               | [] -> None
               | pk ->
                 Some
                   (List.map
                      (fun k ->
                        let idx = Schema.find_exn tbl.Catalog.tschema k in
                        let col = Schema.get tbl.Catalog.tschema idx in
                        Schema.column ~qual:alias k col.Schema.cty)
                      pk))
            | A_derived d -> d.out_key
          in
          acc := { Grouping.li_aliases = it.covers; li_key = key } :: !acc
        end)
      items;
    !acc
  in

  (* ---- DP table ---- *)
  let table : (int, entry list) Hashtbl.t = Hashtbl.create 256 in
  let entries mask = Option.value ~default:[] (Hashtbl.find_opt table mask) in
  let dominates a b =
    tag_kind a.tag = tag_kind b.tag
    && a.est.Cost_model.cost <= b.est.Cost_model.cost
    && a.est.Cost_model.pages <= b.est.Cost_model.pages
    && is_prefix (Physical.sorted_on b.plan) (Physical.sorted_on a.plan)
  in
  let add_entry mask e =
    let current = entries mask in
    if List.exists (fun e' -> dominates e' e) current then ()
    else begin
      let kept = List.filter (fun e' -> not (dominates e e')) current in
      let all =
        List.sort
          (fun a b -> Float.compare a.est.Cost_model.cost b.est.Cost_model.cost)
          (e :: kept)
      in
      let rec take k = function
        | [] -> []
        | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
      in
      Search_stats.count_entry ();
      Hashtbl.replace table mask (take 8 all)
    end
  in

  (* ---- single-item access paths ---- *)
  let extract_bounds alias colname filters =
    (* Fold constant comparisons on (alias, colname) into range bounds.
       A predicate may be dropped from the residual filter only when it is
       the sole contributor to its bound side: with several contributors
       only the tightest value survives as the bound, so dropping the rest
       would lose their constraint — and would make the service layer's
       value-directed re-binding unsound, since under new parameters the
       tightest bound may come from a predicate that is no longer visible.
       Multi-contributor sides keep all their predicates in the residual;
       the bound then only over-approximates and the filter stays exact. *)
    let lo_preds = ref [] and hi_preds = ref [] in
    let lo = ref None and hi = ref None in
    let tighten_lo (v, incl) =
      match !lo with
      | None -> lo := Some (v, incl)
      | Some (v', _) -> if Value.compare v v' > 0 then lo := Some (v, incl)
    in
    let tighten_hi (v, incl) =
      match !hi with
      | None -> hi := Some (v, incl)
      | Some (v', _) -> if Value.compare v v' < 0 then hi := Some (v, incl)
    in
    List.iter
      (fun p ->
        match p with
        | Expr.Cmp (op, Expr.Col c, Expr.Const v)
          when String.equal c.Schema.cqual alias && String.equal c.Schema.cname colname
          -> (
          match op with
          | Expr.Eq ->
            tighten_lo (v, true);
            tighten_hi (v, true);
            lo_preds := p :: !lo_preds;
            hi_preds := p :: !hi_preds
          | Expr.Lt ->
            tighten_hi (v, false);
            hi_preds := p :: !hi_preds
          | Expr.Le ->
            tighten_hi (v, true);
            hi_preds := p :: !hi_preds
          | Expr.Gt ->
            tighten_lo (v, false);
            lo_preds := p :: !lo_preds
          | Expr.Ge ->
            tighten_lo (v, true);
            lo_preds := p :: !lo_preds
          | Expr.Ne -> ())
        | _ -> ())
      filters;
    let multi = function _ :: _ :: _ -> true | _ -> false in
    let residual_bound p =
      (multi !lo_preds && List.memq p !lo_preds)
      || (multi !hi_preds && List.memq p !hi_preds)
    in
    let consumed =
      List.filter
        (fun p -> not (residual_bound p))
        (List.filter (fun p -> List.memq p !lo_preds || List.memq p !hi_preds)
           filters)
    in
    (!lo, !hi, consumed)
  in
  let base_access_plans alias table filters =
    let tbl = Catalog.table_exn cat table in
    let seq = Physical.Seq_scan { alias; table; filter = filters } in
    let index_plans =
      List.map
        (fun (colname, _) ->
          let lo, hi, consumed = extract_bounds alias colname filters in
          let residual = List.filter (fun p -> not (List.memq p consumed)) filters in
          Physical.Index_scan { alias; table; column = colname; lo; hi; filter = residual })
        tbl.Catalog.indexes
    in
    seq :: index_plans
  in
  let singleton_plans j =
    let it = items.(j) in
    let filters = leaf_filters j in
    match it.access with
    | A_base { alias; table } -> base_access_plans alias table filters
    | A_derived d ->
      let plan =
        match filters with
        | [] -> d.plan
        | ps -> Physical.Filter { input = d.plan; pred = ps }
      in
      [ plan ]
  in

  (* ---- greedy conservative group-by placement ---- *)
  let try_place_group mask =
    match input.group with
    | None -> ()
    | Some spec ->
      if input.early_grouping && mask <> full_mask then begin
        let cov = covered_aliases mask in
        let rem_preds = remaining_preds mask in
        let rem_items = remaining_items mask in
        let consider e =
          if tag_kind e.tag <> 0 then None
          else begin
            let candidates = ref [] in
            if
              Grouping.invariant_final_ok ~spec ~covered_aliases:cov
                ~remaining_items:rem_items ~remaining_preds:rem_preds
            then begin
              Search_stats.count_group_plan ();
              let plan =
                Physical.Hash_group
                  {
                    input = e.plan;
                    agg_qual = spec.Grouping.gs_qual;
                    keys = spec.Grouping.gs_keys;
                    aggs = spec.Grouping.gs_aggs;
                    having = spec.Grouping.gs_having;
                  }
              in
              candidates := { plan; est = estimate plan; tag = Grouped_final } :: !candidates
            end;
            (match Grouping.coalesce_at ~spec ~covered_aliases:cov ~remaining_preds:rem_preds with
             | None -> ()
             | Some c ->
               Search_stats.count_group_plan ();
               let plan =
                 Physical.Hash_group
                   {
                     input = e.plan;
                     agg_qual = spec.Grouping.gs_qual;
                     keys = c.Grouping.partial_keys;
                     aggs = c.Grouping.partial_aggs;
                     having = [];
                   }
               in
               candidates :=
                 { plan; est = estimate plan; tag = Grouped_partial c } :: !candidates);
            (* Conservative acceptance: strictly fewer rows, no wider, no
               more expensive — guarantees downstream cost can only drop. *)
            let acceptable g =
              g.est.Cost_model.cost <= e.est.Cost_model.cost
              && g.est.Cost_model.width <= e.est.Cost_model.width
              && g.est.Cost_model.rows < e.est.Cost_model.rows
            in
            let ok = List.filter acceptable !candidates in
            match
              List.sort
                (fun a b -> Float.compare a.est.Cost_model.rows b.est.Cost_model.rows)
                ok
            with
            | [] -> None
            | best :: _ -> Some best
          end
        in
        let updated =
          List.map (fun e -> match consider e with Some g -> g | None -> e) (entries mask)
        in
        Hashtbl.replace table mask updated
      end
  in

  (* ---- join candidate generation ---- *)
  let reconstruct_eq (a, b) = Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) in
  let rescannable plan =
    match plan with
    | Physical.Seq_scan _ | Physical.Index_scan _ -> plan
    | p -> Physical.Materialize { input = p }
  in
  let join_candidates ~left_aliases left_entry j right_plan app_preds =
    let right_aliases = items.(j).covers in
    let in_aliases aliases (c : Schema.column) =
      List.exists (String.equal c.Schema.cqual) aliases
    in
    let equi, residual =
      List.fold_left
        (fun (eq, res) p ->
          match Expr.as_equijoin p with
          | Some (a, b)
            when in_aliases left_aliases a && in_aliases right_aliases b ->
            (eq @ [ (a, b) ], res)
          | Some (a, b)
            when in_aliases left_aliases b && in_aliases right_aliases a ->
            (eq @ [ (b, a) ], res)
          | _ -> (eq, res @ [ p ]))
        ([], []) app_preds
    in
    let out = ref [] in
    let emit plan = out := plan :: !out in
    (* Block nested loops: always available. *)
    emit
      (Physical.Block_nl_join
         { left = left_entry.plan; right = rescannable right_plan; cond = app_preds });
    if equi <> [] then begin
      (* Hash join: build the smaller side. *)
      let lest = left_entry.est and rest_ = estimate right_plan in
      let build_side =
        if rest_.Cost_model.pages <= lest.Cost_model.pages then `Right else `Left
      in
      emit
        (Physical.Hash_join
           { left = left_entry.plan; right = right_plan; keys = equi; cond = residual;
             build_side });
      (* Sort-merge join: reuse existing orders where possible. *)
      let lkeys = List.map fst equi and rkeys = List.map snd equi in
      let lsorted =
        if is_prefix (List.map key_name lkeys) (Physical.sorted_on left_entry.plan)
        then left_entry.plan
        else Physical.Sort { input = left_entry.plan; cols = lkeys; desc = [] }
      in
      let rsorted =
        if is_prefix (List.map key_name rkeys) (Physical.sorted_on right_plan)
        then right_plan
        else Physical.Sort { input = right_plan; cols = rkeys; desc = [] }
      in
      emit
        (Physical.Merge_join { left = lsorted; right = rsorted; keys = equi; cond = residual });
      (* Index nested loops into a base right item (generated once, for the
         sequential-scan variant of the right plan, to avoid duplicates). *)
      (match items.(j).access, right_plan with
       | A_base { alias; table }, Physical.Seq_scan _ ->
         let tbl = Catalog.table_exn cat table in
         List.iteri
           (fun i (lcol, rcol) ->
             if
               String.equal rcol.Schema.cqual alias
               && Catalog.index_on tbl rcol.Schema.cname <> None
             then begin
               let others =
                 List.filteri (fun i' _ -> i' <> i) equi
                 |> List.map reconstruct_eq
               in
               let cond = residual @ others @ leaf_filters j in
               emit
                 (Physical.Index_nl_join
                    { left = left_entry.plan; alias; table; column = rcol.Schema.cname;
                      outer_key = lcol; cond })
             end)
           equi
       | (A_base _ | A_derived _), _ -> ())
    end;
    !out
  in

  (* ---- enumeration ---- *)
  for j = 0 to n - 1 do
    List.iter
      (fun plan -> add_entry (1 lsl j) { plan; est = estimate plan; tag = Ungrouped })
      (singleton_plans j);
    try_place_group (1 lsl j)
  done;
  for mask = 1 to full_mask do
    if mask land (mask - 1) <> 0 (* at least two items *) then begin
      (* Prefer connected extensions; fall back to cross joins. *)
      let candidates_j =
        List.filter
          (fun j ->
            mask land (1 lsl j) <> 0 && entries (mask lxor (1 lsl j)) <> [])
          (List.init n (fun i -> i))
      in
      let connected_j =
        List.filter
          (fun j -> applicable_preds (mask lxor (1 lsl j)) j <> [])
          candidates_j
      in
      let js = if connected_j <> [] then connected_j else candidates_j in
      List.iter
        (fun j ->
          let sub = mask lxor (1 lsl j) in
          let app = applicable_preds sub j in
          let left_aliases = covered_aliases sub in
          List.iter
            (fun left_entry ->
              List.iter
                (fun right_plan ->
                  List.iter
                    (fun plan ->
                      Search_stats.count_join_plan ();
                      add_entry mask
                        { plan; est = estimate plan; tag = left_entry.tag })
                    (join_candidates ~left_aliases left_entry j right_plan app))
                (singleton_plans j))
            (entries sub))
        js;
      if input.bushy then begin
        (* Composite (bushy) inner sides: join two multi-item subplans.  The
           group-by spec may have been applied in at most one side. *)
        let rec subsets s =
          if s = 0 then ()
          else begin
            let comp = mask lxor s in
            if
              s land mask = s && comp <> 0
              && comp land (comp - 1) <> 0 (* right side has >= 2 items *)
            then begin
              let app = applicable_preds_mask s comp in
              if app <> [] then
                List.iter
                  (fun left_entry ->
                    List.iter
                      (fun right_entry ->
                        let tag =
                          match left_entry.tag, right_entry.tag with
                          | t, Ungrouped -> Some t
                          | Ungrouped, t -> Some t
                          | _, _ -> None
                        in
                        match tag with
                        | None -> ()
                        | Some tag ->
                          let left_aliases = covered_aliases s in
                          let right_aliases = covered_aliases comp in
                          let in_aliases aliases (c : Schema.column) =
                            List.exists (String.equal c.Schema.cqual) aliases
                          in
                          let equi, residual =
                            List.fold_left
                              (fun (eq, res) p ->
                                match Expr.as_equijoin p with
                                | Some (a, b)
                                  when in_aliases left_aliases a
                                       && in_aliases right_aliases b ->
                                  (eq @ [ (a, b) ], res)
                                | Some (a, b)
                                  when in_aliases left_aliases b
                                       && in_aliases right_aliases a ->
                                  (eq @ [ (b, a) ], res)
                                | _ -> (eq, res @ [ p ]))
                              ([], []) app
                          in
                          let emit plan =
                            Search_stats.count_join_plan ();
                            add_entry mask { plan; est = estimate plan; tag }
                          in
                          emit
                            (Physical.Block_nl_join
                               { left = left_entry.plan;
                                 right = Physical.Materialize { input = right_entry.plan };
                                 cond = app });
                          if equi <> [] then begin
                            let lest = left_entry.est and rest_ = right_entry.est in
                            let build_side =
                              if rest_.Cost_model.pages <= lest.Cost_model.pages
                              then `Right
                              else `Left
                            in
                            emit
                              (Physical.Hash_join
                                 { left = left_entry.plan; right = right_entry.plan;
                                   keys = equi; cond = residual; build_side });
                            let lkeys = List.map fst equi
                            and rkeys = List.map snd equi in
                            let lsorted =
                              if
                                is_prefix (List.map key_name lkeys)
                                  (Physical.sorted_on left_entry.plan)
                              then left_entry.plan
                              else Physical.Sort { input = left_entry.plan; cols = lkeys; desc = [] }
                            in
                            let rsorted =
                              if
                                is_prefix (List.map key_name rkeys)
                                  (Physical.sorted_on right_entry.plan)
                              then right_entry.plan
                              else
                                Physical.Sort { input = right_entry.plan; cols = rkeys; desc = [] }
                            in
                            emit
                              (Physical.Merge_join
                                 { left = lsorted; right = rsorted; keys = equi;
                                   cond = residual })
                          end)
                      (entries comp))
                  (entries s)
            end;
            subsets ((s - 1) land mask)
          end
        in
        subsets ((mask - 1) land mask)
      end;
      try_place_group mask
    end
  done;

  (* ---- finalize ---- *)
  let finalize e =
    match input.group with
    | None -> [ e ]
    | Some spec -> (
      match e.tag with
      | Grouped_final -> [ e ]
      | Grouped_partial c ->
        let plan = finish_partial spec c e.plan in
        [ { plan; est = estimate plan; tag = Grouped_final } ]
      | Ungrouped ->
        let hash =
          Physical.Hash_group
            {
              input = e.plan;
              agg_qual = spec.Grouping.gs_qual;
              keys = spec.Grouping.gs_keys;
              aggs = spec.Grouping.gs_aggs;
              having = spec.Grouping.gs_having;
            }
        in
        let sorted_input =
          if
            is_prefix
              (List.map key_name spec.Grouping.gs_keys)
              (Physical.sorted_on e.plan)
          then e.plan
          else Physical.Sort { input = e.plan; cols = spec.Grouping.gs_keys; desc = [] }
        in
        let sortg =
          Physical.Sort_group
            {
              input = sorted_input;
              agg_qual = spec.Grouping.gs_qual;
              keys = spec.Grouping.gs_keys;
              aggs = spec.Grouping.gs_aggs;
              having = spec.Grouping.gs_having;
            }
        in
        [
          { plan = hash; est = estimate hash; tag = Grouped_final };
          { plan = sortg; est = estimate sortg; tag = Grouped_final };
        ])
  in
  let finals = List.concat_map finalize (entries full_mask) in
  match
    List.sort (fun a b -> Float.compare a.est.Cost_model.cost b.est.Cost_model.cost) finals
  with
  | [] -> invalid_arg "Dp.optimize: no plan found (disconnected input?)"
  | best :: _ -> best
