(** Facade: cost-based optimization of queries with aggregate views.

    Three algorithms are offered, in increasing search-space order:

    - [Traditional] — the two-phase block-at-a-time optimizer of
      Section 5.1 (each view optimized locally, group-bys fixed at block
      tops);
    - [Greedy_conservative] — Traditional plus the greedy conservative
      heuristic of Section 5.2 (cost-based push-down of group-bys within
      each block);
    - [Paper] — the full algorithm of Sections 5.3–5.4: pull-up
      transformation over the minimal invariant sets, enumeration of the
      pulled sets W_i, combined with the push-down heuristic.

    The produced plan is executable with {!Executor.run}; its estimated
    cost under [Paper] is guaranteed no larger than under [Traditional]
    (the traditional strategy is in the search space). *)

type algorithm = Traditional | Greedy_conservative | Paper

type options = {
  algorithm : algorithm;
  work_mem : int;  (** operator memory budget, pages *)
  paper : Paper_opt.options;  (** pull-up restrictions, used by [Paper] *)
  predicate_moveround : bool;
      (** run {!Predicate_transfer} first (on for every algorithm by
          default — the paper treats it as pre-existing technique) *)
  dop : int;
      (** degree of intra-query parallelism: when [> 1], eligible plans are
          wrapped with [Physical.Exchange] so morsel workers fan out over
          that many domains *)
  parallel_threshold : float;
      (** minimum estimated serial cost before the exchange rewrite is
          considered — below it, worker startup dominates any speedup *)
}

val default_options : options
(** [Paper] algorithm, 32 pages of work memory, default restrictions,
    predicate move-around on, [dop = 1] (serial), parallel threshold of
    200 cost units. *)

type result = {
  plan : Physical.t;  (** full plan, including the final projection *)
  est : Cost_model.est;
  search : Search_stats.t;  (** effort counters for this optimization *)
  report : Paper_opt.report option;  (** phase details when [Paper] ran *)
  time_ms : float;  (** wall-clock optimization time of this call *)
}

val optimize : ?options:options -> Catalog.t -> Block.query -> result
(** @raise Invalid_argument when the query fails {!Block.validate}. *)

val run :
  ?options:options -> Catalog.t -> Block.query -> Relation.t * Buffer_pool.stats
(** Optimize, then execute cold; returns the result and measured page IO. *)
