type nview = {
  n_alias : string;
  n_rels : (string * string) list;
  n_preds : Expr.pred list;
  n_keys : Schema.column list;
  n_aggs : Aggregate.t list;
  n_having : Expr.pred list;
  n_agg_cols : Schema.column list;
}

type nquery = {
  views : nview list;
  rels : (string * string) list;
  preds : Expr.pred list;
  grouped : bool;
  keys : Schema.column list;
  aggs : Aggregate.t list;
  having : Expr.pred list;
  select : (Expr.t * Schema.column) list;
  order : (Schema.column * bool) list;
  limit : int option;
}

let normalize cat (q : Block.query) =
  (match Block.validate cat q with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Normalize: " ^ msg));
  (* Substitution eliminating key exports of every view. *)
  let key_map =
    List.concat_map Block.export_mapping q.Block.q_views
  in
  let subst c =
    List.find_map
      (fun (exported, underlying) ->
        if Schema.column_equal exported c then Some underlying else None)
      key_map
  in
  let rw_pred = Expr.subst_columns subst in
  let rw_expr = Expr.subst_expr_columns subst in
  let rw_col c = match subst c with Some c' -> c' | None -> c in
  let views =
    List.map
      (fun (v : Block.view) ->
        {
          n_alias = v.Block.v_alias;
          n_rels =
            List.map (fun (r : Block.rel) -> (r.Block.r_alias, r.Block.r_table)) v.Block.v_rels;
          n_preds = List.concat_map Expr.conjuncts v.Block.v_preds;
          n_keys = v.Block.v_keys;
          n_aggs = v.Block.v_aggs;
          n_having = List.concat_map Expr.conjuncts v.Block.v_having;
          n_agg_cols = Block.exported_agg_columns v;
        })
      q.Block.q_views
  in
  let rw_agg (a : Aggregate.t) =
    { a with Aggregate.arg = Option.map rw_expr a.Aggregate.arg }
  in
  let select =
    List.map
      (fun item ->
        match item with
        | Block.Sel_col (c, name) ->
          let c' = rw_col c in
          (Expr.Col c', Schema.column name c'.Schema.cty)
        | Block.Sel_agg a ->
          let ty = Aggregate.result_type a in
          ( Expr.Col (Schema.column ~qual:"" a.Aggregate.out_name ty),
            Schema.column a.Aggregate.out_name ty ))
      q.Block.q_select
  in
  {
    views;
    rels = List.map (fun (r : Block.rel) -> (r.Block.r_alias, r.Block.r_table)) q.Block.q_rels;
    preds = List.map rw_pred (List.concat_map Expr.conjuncts q.Block.q_preds);
    grouped = q.Block.q_grouped;
    keys = List.map rw_col q.Block.q_keys;
    aggs = List.map rw_agg q.Block.q_aggs;
    having = List.map rw_pred (List.concat_map Expr.conjuncts q.Block.q_having);
    select;
    order =
      List.map
        (fun (name, desc) ->
          match
            List.find_opt (fun (_, c) -> String.equal c.Schema.cname name) select
          with
          | Some (_, c) -> (c, desc)
          | None -> invalid_arg ("Normalize: unknown ORDER BY column " ^ name))
        q.Block.q_order;
    limit = q.Block.q_limit;
  }

let agg_quals_of_pred nq p =
  let cols = Expr.pred_columns p in
  List.filter_map
    (fun v ->
      if
        List.exists
          (fun c -> List.exists (Schema.column_equal c) v.n_agg_cols)
          cols
      then Some v.n_alias
      else None)
    nq.views
  |> List.sort_uniq String.compare

let pred_aliases nq p =
  let cols = Expr.pred_columns p in
  let base =
    List.filter_map
      (fun (c : Schema.column) ->
        (* Aggregate-output qualifiers are view aliases, not base aliases. *)
        if List.exists (fun v -> String.equal v.n_alias c.Schema.cqual) nq.views
        then None
        else Some c.Schema.cqual)
      cols
  in
  let via_aggs =
    List.concat_map
      (fun valias ->
        match List.find_opt (fun v -> String.equal v.n_alias valias) nq.views with
        | Some v -> List.map fst v.n_rels
        | None -> [])
      (agg_quals_of_pred nq p)
  in
  List.sort_uniq String.compare (base @ via_aggs)
