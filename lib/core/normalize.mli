(** Normalization of a canonical {!Block.query} into the optimizer's
    internal form.

    Two rewrites happen here:

    - {b Export elimination.}  Inside the optimizer a view's group-by keeps
      the base identities of its grouping columns (a [Group] node never
      renames its keys), so every outer reference to a view's exported
      {e key} column is rewritten to the underlying base column.  This makes
      pull-up a pure composition problem and lets the selectivity estimator
      find base-table statistics for predicates that cross block boundaries.
      References to exported {e aggregate} columns keep the (view alias,
      output name) identity, which is exactly how the view's group-by labels
      them.

    - {b Predicate classification.}  Outer conjuncts that mention a view's
      aggregate outputs are flagged: they cannot be evaluated before that
      view's group-by, which is the "deferred to the Having clause"
      condition of the pull-up transformation (Definition 1, item 4). *)

type nview = {
  n_alias : string;
  n_rels : (string * string) list;  (** (alias, table) of the view's SPJ part *)
  n_preds : Expr.pred list;  (** view-local conjuncts *)
  n_keys : Schema.column list;  (** grouping columns, base identities *)
  n_aggs : Aggregate.t list;
  n_having : Expr.pred list;
  n_agg_cols : Schema.column list;  (** aggregate output columns (alias-qualified) *)
}

type nquery = {
  views : nview list;
  rels : (string * string) list;  (** outer base tables *)
  preds : Expr.pred list;  (** outer conjuncts, export-eliminated *)
  grouped : bool;
  keys : Schema.column list;
  aggs : Aggregate.t list;
  having : Expr.pred list;
  select : (Expr.t * Schema.column) list;  (** final projection *)
  order : (Schema.column * bool) list;
      (** output columns to sort by; the flag is true for descending *)
  limit : int option;
}

val normalize : Catalog.t -> Block.query -> nquery
(** @raise Invalid_argument when {!Block.validate} fails. *)

val agg_quals_of_pred : nquery -> Expr.pred -> string list
(** Aliases of the views whose aggregate output columns the predicate
    mentions (empty = evaluable before any view group-by). *)

val pred_aliases : nquery -> Expr.pred -> string list
(** All base-relation aliases a predicate touches, where references to a
    view's aggregate outputs count as touching {e all} of that view's
    relations. *)
