type algorithm = Traditional | Greedy_conservative | Paper

type options = {
  algorithm : algorithm;
  work_mem : int;
  paper : Paper_opt.options;
  predicate_moveround : bool;
  dop : int;
  parallel_threshold : float;
}

let default_options =
  { algorithm = Paper; work_mem = 32; paper = Paper_opt.default_options;
    predicate_moveround = true; dop = 1; parallel_threshold = 200. }

type result = {
  plan : Physical.t;
  est : Cost_model.est;
  search : Search_stats.t;
  report : Paper_opt.report option;
  time_ms : float;
}

let optimize ?(options = default_options) cat query =
  let t0 = Unix.gettimeofday () in
  Search_stats.reset ();
  let nq = Normalize.normalize cat query in
  let nq = if options.predicate_moveround then Predicate_transfer.apply nq else nq in
  let entry, report =
    match options.algorithm with
    | Traditional ->
      ( Baseline.optimize cat ~work_mem:options.work_mem ~mode:`Traditional
          ~bushy:options.paper.Paper_opt.bushy nq,
        None )
    | Greedy_conservative ->
      ( Baseline.optimize cat ~work_mem:options.work_mem ~mode:`Greedy
          ~bushy:options.paper.Paper_opt.bushy nq,
        None )
    | Paper ->
      let r =
        Paper_opt.optimize cat ~work_mem:options.work_mem ~opts:options.paper nq
      in
      (r.Paper_opt.best, Some r)
  in
  let plan = Physical.Project { input = entry.Dp.plan; cols = nq.Normalize.select } in
  let plan =
    match nq.Normalize.order with
    | [] -> plan
    | order ->
      Physical.Sort
        { input = plan; cols = List.map fst order; desc = List.map snd order }
  in
  let plan =
    match nq.Normalize.limit with
    | None -> plan
    | Some count -> Physical.Limit { input = plan; count }
  in
  let est = Cost_model.estimate cat ~work_mem:options.work_mem plan in
  (* Intra-query parallelism: rewrite the serial plan around an exchange
     when workers are available and the estimated work amortizes the
     per-worker startup toll (costed by the parallel-fraction model in
     [Cost_model]).  Keep the parallel plan only if the model agrees it is
     cheaper — tiny plans stay serial. *)
  let plan, est =
    if options.dop > 1 && est.Cost_model.cost >= options.parallel_threshold
    then begin
      let pplan = Exchange.parallelize ~dop:options.dop plan in
      if not (Exchange.has_exchange pplan) then (plan, est)
      else
        let pest = Cost_model.estimate cat ~work_mem:options.work_mem pplan in
        if pest.Cost_model.cost < est.Cost_model.cost then (pplan, pest)
        else (plan, est)
    end
    else (plan, est)
  in
  { plan; est; search = Search_stats.snapshot (); report;
    time_ms = (Unix.gettimeofday () -. t0) *. 1000. }

let run ?(options = default_options) cat query =
  let r = optimize ~options cat query in
  let ctx = Exec_ctx.create ~work_mem:options.work_mem cat in
  Executor.run_measured ~cold:true ctx r.plan
