type rel = { r_alias : string; r_table : string }

type out_item =
  | Out_key of Schema.column * string
  | Out_agg of Aggregate.t

type view = {
  v_alias : string;
  v_rels : rel list;
  v_preds : Expr.pred list;
  v_keys : Schema.column list;
  v_aggs : Aggregate.t list;
  v_having : Expr.pred list;
  v_out : out_item list;
}

type select_item =
  | Sel_col of Schema.column * string
  | Sel_agg of Aggregate.t

type query = {
  q_views : view list;
  q_rels : rel list;
  q_preds : Expr.pred list;
  q_grouped : bool;
  q_keys : Schema.column list;
  q_aggs : Aggregate.t list;
  q_having : Expr.pred list;
  q_select : select_item list;
  q_order : (string * bool) list;
  q_limit : int option;
}

let out_column v_alias = function
  | Out_key (c, name) -> Schema.column ~qual:v_alias name c.Schema.cty
  | Out_agg a -> Schema.column ~qual:v_alias a.Aggregate.out_name (Aggregate.result_type a)

let view_schema v = Schema.of_columns (List.map (out_column v.v_alias) v.v_out)

let export_mapping v =
  List.filter_map
    (function
      | Out_key (c, name) ->
        Some (Schema.column ~qual:v.v_alias name c.Schema.cty, c)
      | Out_agg _ -> None)
    v.v_out

let exported_agg_columns v =
  List.filter_map
    (function
      | Out_agg a ->
        Some
          (Schema.column ~qual:v.v_alias a.Aggregate.out_name (Aggregate.result_type a))
      | Out_key _ -> None)
    v.v_out

(* Build a left-deep join of [inputs] in order, attaching each conjunct of
   [preds] at the lowest point where all its qualifiers are in scope.
   Conjuncts referring to a single alias become filters on that input. *)
let join_all inputs preds =
  let aliases_of t = List.map fst (Logical.relations t) in
  let covered t qs =
    let have = aliases_of t in
    List.for_all (fun q -> List.exists (String.equal q) have) qs
  in
  (* Attach single-alias predicates as filters. *)
  let attach_local input preds =
    let mine, rest =
      List.partition
        (fun p ->
          match Expr.qualifiers p with
          | [ q ] -> covered input [ q ]
          | _ -> false)
        preds
    in
    let input =
      match Expr.conjoin mine with
      | None -> input
      | Some p -> Logical.Filter { input; pred = p }
    in
    (input, rest)
  in
  match inputs with
  | [] -> invalid_arg "Block.join_all: no inputs"
  | first :: rest_inputs ->
    let first, preds = attach_local first preds in
    let tree, preds =
      List.fold_left
        (fun (acc, preds) input ->
          let input, preds = attach_local input preds in
          let joined0 = Logical.Join { left = acc; right = input; cond = [] } in
          let now, later =
            List.partition (fun p -> covered joined0 (Expr.qualifiers p)) preds
          in
          (Logical.Join { left = acc; right = input; cond = now }, later))
        (first, preds) rest_inputs
    in
    (match Expr.conjoin preds with
     | None -> tree
     | Some p -> Logical.Filter { input = tree; pred = p })

let view_logical cat v =
  let scans =
    List.map (fun r -> Logical.scan cat ~alias:r.r_alias r.r_table) v.v_rels
  in
  let joined = join_all scans v.v_preds in
  let grouped =
    Logical.Group
      {
        input = joined;
        agg_qual = v.v_alias;
        keys = v.v_keys;
        aggs = v.v_aggs;
        having = v.v_having;
      }
  in
  let cols =
    List.map
      (fun item ->
        let out = out_column v.v_alias item in
        let src =
          match item with
          | Out_key (c, _) -> Expr.Col c
          | Out_agg a ->
            Expr.Col
              (Schema.column ~qual:v.v_alias a.Aggregate.out_name
                 (Aggregate.result_type a))
        in
        (src, out))
      v.v_out
  in
  Logical.Project { input = grouped; cols }

let top_select_tree input q =
  let sel_source = function
    | Sel_col (c, _) -> Expr.Col c
    | Sel_agg a ->
      Expr.Col (Schema.column ~qual:"" a.Aggregate.out_name (Aggregate.result_type a))
  in
  let sel_out = function
    | Sel_col (c, name) -> Schema.column name c.Schema.cty
    | Sel_agg a -> Schema.column a.Aggregate.out_name (Aggregate.result_type a)
  in
  let cols = List.map (fun s -> (sel_source s, sel_out s)) q.q_select in
  Logical.Project { input; cols }

let query_logical cat q =
  let inputs =
    List.map (view_logical cat) q.q_views
    @ List.map (fun r -> Logical.scan cat ~alias:r.r_alias r.r_table) q.q_rels
  in
  let joined = join_all inputs q.q_preds in
  let body =
    if q.q_grouped then
      Logical.Group
        { input = joined; agg_qual = ""; keys = q.q_keys; aggs = q.q_aggs;
          having = q.q_having }
    else joined
  in
  top_select_tree body q

let reference_eval cat q =
  let rel = Logical.eval cat (query_logical cat q) in
  let rel =
    match q.q_order with
    | [] -> rel
    | names ->
      let schema = Relation.schema rel in
      let keys =
        Array.of_list
          (List.map (fun (n, desc) -> (Schema.find_exn schema n, desc)) names)
      in
      let cmp a b =
        let rec loop i =
          if i >= Array.length keys then 0
          else
            let idx, desc = keys.(i) in
            let c = Value.compare a.(idx) b.(idx) in
            if c <> 0 then if desc then -c else c else loop (i + 1)
        in
        loop 0
      in
      Relation.create schema (List.stable_sort cmp (Relation.tuples rel))
  in
  match q.q_limit with
  | None -> rel
  | Some n ->
    let tuples = Relation.tuples rel in
    let rec take k = function
      | [] -> []
      | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
    in
    Relation.create (Relation.schema rel) (take n tuples)

let all_aliases q =
  List.map (fun v -> v.v_alias) q.q_views @ List.map (fun r -> r.r_alias) q.q_rels

let validate cat q =
  let ( let* ) r f = Result.bind r f in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let aliases = all_aliases q @ List.concat_map (fun v -> List.map (fun r -> r.r_alias) v.v_rels) q.q_views in
  let rec dup = function
    | [] -> None
    | a :: rest -> if List.exists (String.equal a) rest then Some a else dup rest
  in
  let* () = match dup aliases with
    | Some a -> err "duplicate alias %s" a
    | None -> Ok ()
  in
  let check_rel r =
    match Catalog.find_table cat r.r_table with
    | Some _ -> Ok ()
    | None -> err "unknown table %s" r.r_table
  in
  let rec check_all f = function
    | [] -> Ok ()
    | x :: rest ->
      let* () = f x in
      check_all f rest
  in
  let* () = check_all check_rel q.q_rels in
  let* () = check_all (fun v -> check_all check_rel v.v_rels) q.q_views in
  let* () =
    check_all
      (fun v ->
        if v.v_keys = [] && v.v_aggs = [] then
          err "view %s has neither grouping columns nor aggregates" v.v_alias
        else if v.v_out = [] then err "view %s exports nothing" v.v_alias
        else Ok ())
      q.q_views
  in
  let out_names =
    List.map
      (function Sel_col (_, n) -> n | Sel_agg a -> a.Aggregate.out_name)
      q.q_select
  in
  let* () =
    check_all
      (fun (n, _desc) ->
        if List.exists (String.equal n) out_names then Ok ()
        else err "ORDER BY column %s is not an output column" n)
      q.q_order
  in
  let* () =
    match q.q_limit with
    | Some n when n < 0 -> err "negative LIMIT"
    | Some _ | None -> Ok ()
  in
  if q.q_grouped then
    check_all
      (function
        | Sel_col (c, _) ->
          if List.exists (fun k -> Schema.column_equal k c) q.q_keys then Ok ()
          else err "select column %s not in GROUP BY" (Schema.column_to_string c)
        | Sel_agg _ -> Ok ())
      q.q_select
  else if q.q_aggs <> [] then err "aggregates without grouped outer block"
  else Ok ()

let pp_rel ppf r =
  if String.equal r.r_alias r.r_table then Format.pp_print_string ppf r.r_table
  else Format.fprintf ppf "%s AS %s" r.r_table r.r_alias

let pp_view ppf v =
  let keys = String.concat ", " (List.map Schema.column_to_string v.v_keys) in
  let outs =
    String.concat ", "
      (List.map
         (function
           | Out_key (c, n) ->
             Printf.sprintf "%s AS %s" (Schema.column_to_string c) n
           | Out_agg a -> Aggregate.to_string a)
         v.v_out)
  in
  Format.fprintf ppf "%s := SELECT %s FROM %s" v.v_alias outs
    (String.concat ", " (List.map (Format.asprintf "%a" pp_rel) v.v_rels));
  if v.v_preds <> [] then
    Format.fprintf ppf " WHERE %s"
      (String.concat " AND " (List.map Expr.pred_to_string v.v_preds));
  Format.fprintf ppf " GROUP BY %s" keys;
  if v.v_having <> [] then
    Format.fprintf ppf " HAVING %s"
      (String.concat " AND " (List.map Expr.pred_to_string v.v_having))

let pp ppf q =
  List.iter (fun v -> Format.fprintf ppf "%a@\n" pp_view v) q.q_views;
  let sel =
    String.concat ", "
      (List.map
         (function
           | Sel_col (c, n) ->
             Printf.sprintf "%s AS %s" (Schema.column_to_string c) n
           | Sel_agg a -> Aggregate.to_string a)
         q.q_select)
  in
  let froms =
    List.map (fun v -> v.v_alias) q.q_views
    @ List.map (Format.asprintf "%a" pp_rel) q.q_rels
  in
  Format.fprintf ppf "SELECT %s FROM %s" sel (String.concat ", " froms);
  if q.q_preds <> [] then
    Format.fprintf ppf " WHERE %s"
      (String.concat " AND " (List.map Expr.pred_to_string q.q_preds));
  if q.q_grouped then begin
    Format.fprintf ppf " GROUP BY %s"
      (String.concat ", " (List.map Schema.column_to_string q.q_keys));
    if q.q_having <> [] then
      Format.fprintf ppf " HAVING %s"
        (String.concat " AND " (List.map Expr.pred_to_string q.q_having))
  end
