(** Aggregate functions: COUNT star, COUNT, SUM, AVG, MIN, MAX.

    All six are decomposable in the paper's sense (Section 4.2): a group can
    be computed by coalescing sub-groups that agree on the grouping columns.
    {!decompose} produces the partial aggregates for the added lower
    group-by of simple coalescing grouping and the combining aggregates for
    the original (upper) group-by; AVG additionally needs a final projection
    (sum/count), returned as [post]. *)

type func =
  | Count_star
  | Count
  | Sum
  | Avg
  | Min
  | Max
  | Udf of udf_spec
      (** user-defined aggregate (paper, Section 2: "an aggregate function
          can be built-in or user-defined (without side-effects), e.g. ...
          Standard_deviation").  Not decomposable: simple coalescing will
          never be applied to it, but pull-up and invariant grouping carry
          it opaquely. *)

and udf_spec = {
  udf_name : string;
  udf_result : Datatype.t;
  udf_fold : Value.t list -> Value.t;
      (** applied to the group's argument values, in input order *)
}

type t = {
  func : func;
  arg : Expr.t option;  (** [None] only for [Count_star] *)
  out_name : string;    (** name of the produced column *)
}

val make : func -> ?arg:Expr.t -> string -> t
(** @raise Invalid_argument when [arg]'s presence contradicts [func]
    (UDFs require an argument). *)

val stddev : arg:Expr.t -> string -> t
(** Population standard deviation as a {!Udf} — the paper's own example of
    a user-defined aggregate. *)

val result_type : t -> Datatype.t
val arg_columns : t -> Schema.column list
val is_decomposable : t -> bool

type decomposed = {
  partials : t list;
  (** aggregates to run in the added lower group-by *)
  combine : t list;
  (** aggregates for the upper group-by, reading the partial outputs
      (referenced with qualifier [qual] passed to {!decompose}) *)
  post : (Expr.t * string) option;
  (** optional final expression (AVG): built from the combined outputs *)
}

val decompose : qual:string -> t -> decomposed
(** @raise Invalid_argument on a non-decomposable (UDF) aggregate; guard
    with {!is_decomposable}. *)

(** {1 Runtime} *)

type state

val init : func -> state
val step : state -> Value.t option -> state
(** Fold one row in; the value is [None] exactly for [Count_star]. *)

val merge : state -> state -> state
(** Combine the states of two sub-groups (decomposability witness). *)

val count_state : int -> state
(** The state a COUNT reaches after absorbing that many rows. *)

val sum_state : Value.t -> state
(** The state a SUM reaches after absorbing one or more rows totalling the
    given value.  With {!count_state}, lets an executor that accumulates
    int-typed COUNT/SUM groups in unboxed form rebuild the equivalent
    generic state when it must fall back. *)

val finish : state -> Value.t
(** @raise Invalid_argument on a state that absorbed no rows — SQL would
    return NULL, which the engine does not model; group-by never produces
    empty groups. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
