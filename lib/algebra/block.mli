(** The canonical multi-block query form of the paper (Figure 3):

    a join among base tables [B1..Bn] and aggregate views [Q1..Qm], each
    view being a single-block SPJ query with GROUP BY (and possibly HAVING),
    the whole optionally topped by a further GROUP BY [G0] and HAVING.

    This is the optimizer's input.  The binder lowers parsed SQL to it;
    workload generators construct it directly. *)

type rel = { r_alias : string; r_table : string }

type out_item =
  | Out_key of Schema.column * string
      (** an underlying grouping column exported under a new name *)
  | Out_agg of Aggregate.t  (** exported under its [out_name] *)

type view = {
  v_alias : string;  (** alias of the view in the outer FROM clause *)
  v_rels : rel list;  (** relations of the view's SPJ part, V_i *)
  v_preds : Expr.pred list;  (** conjuncts of the view's WHERE clause *)
  v_keys : Schema.column list;  (** grouping columns g_i (underlying columns) *)
  v_aggs : Aggregate.t list;
  v_having : Expr.pred list;
  v_out : out_item list;  (** exported columns, in order *)
}

type select_item =
  | Sel_col of Schema.column * string  (** column and its output name *)
  | Sel_agg of Aggregate.t

type query = {
  q_views : view list;
  q_rels : rel list;  (** base tables B of the outer block *)
  q_preds : Expr.pred list;  (** outer WHERE conjuncts *)
  q_grouped : bool;  (** whether the outer block has G0 *)
  q_keys : Schema.column list;  (** outer grouping columns (over view outputs
                                    and base columns) *)
  q_aggs : Aggregate.t list;
  q_having : Expr.pred list;
  q_select : select_item list;
  q_order : (string * bool) list;
      (** output columns to sort the result by; the flag is true for
          descending order *)
  q_limit : int option;  (** maximum number of result rows *)
}

val view_schema : view -> Schema.t
(** Output schema of the view, qualified by [v_alias]. *)

val export_mapping : view -> (Schema.column * Schema.column) list
(** Pairs (exported column, underlying column) for the [Out_key] exports —
    the substitution pull-up uses to translate outer predicates on the
    view's grouping columns into predicates on base columns. *)

val exported_agg_columns : view -> Schema.column list
(** The view-output columns that carry aggregate results ("aggregated
    columns of G1" in Definition 1). *)

val view_logical : Catalog.t -> view -> Logical.t
(** Canonical operator tree of a view: left-deep joins of its relations in
    textual order, filter, group-by, projection renaming to the alias. *)

val query_logical : Catalog.t -> query -> Logical.t
(** Canonical operator tree of the whole query (views materialized in
    place), {e without} ORDER BY/LIMIT; the reference plan whose
    {!Logical.eval} defines the query's bag semantics. *)

val reference_eval : Catalog.t -> query -> Relation.t
(** {!Logical.eval} of {!query_logical}, then ORDER BY and LIMIT applied at
    the relation level: the full reference semantics. *)

val all_aliases : query -> string list
(** Aliases of all views and outer base tables. *)

val validate : Catalog.t -> query -> (unit, string) result
(** Structural checks: distinct aliases, known tables, select list within
    grouping columns when grouped, view exports well-formed. *)

val pp : Format.formatter -> query -> unit
(** SQL-ish rendering for debugging. *)
