type func =
  | Count_star
  | Count
  | Sum
  | Avg
  | Min
  | Max
  | Udf of udf_spec

and udf_spec = {
  udf_name : string;
  udf_result : Datatype.t;
  udf_fold : Value.t list -> Value.t;
}

type t = { func : func; arg : Expr.t option; out_name : string }

let make func ?arg out_name =
  (match func, arg with
   | Count_star, Some _ -> invalid_arg "Aggregate.make: COUNT(*) takes no argument"
   | (Count | Sum | Avg | Min | Max | Udf _), None ->
     invalid_arg "Aggregate.make: missing argument"
   | Count_star, None | (Count | Sum | Avg | Min | Max | Udf _), Some _ -> ());
  { func; arg; out_name }

let stddev ~arg out_name =
  let fold values =
    let n = float_of_int (List.length values) in
    let sum = List.fold_left (fun acc v -> acc +. Value.to_float v) 0. values in
    let sumsq =
      List.fold_left (fun acc v -> acc +. (Value.to_float v ** 2.)) 0. values
    in
    let mean = sum /. n in
    Value.Float (Float.sqrt (Float.max 0. ((sumsq /. n) -. (mean *. mean))))
  in
  make
    (Udf { udf_name = "STDDEV"; udf_result = Datatype.Float; udf_fold = fold })
    ~arg out_name

let result_type t =
  match t.func, t.arg with
  | (Count_star | Count), _ -> Datatype.Int
  | Avg, _ -> Datatype.Float
  | Udf u, _ -> u.udf_result
  | (Sum | Min | Max), Some e -> Expr.type_of e
  | (Sum | Min | Max), None -> assert false

let arg_columns t = match t.arg with None -> [] | Some e -> Expr.columns e

let is_decomposable t =
  match t.func with
  | Count_star | Count | Sum | Avg | Min | Max -> true
  | Udf _ -> false

type decomposed = {
  partials : t list;
  combine : t list;
  post : (Expr.t * string) option;
}

let partial_col ~qual name ty = Expr.Col (Schema.column ~qual name ty)

let decompose ~qual t =
  let p name = t.out_name ^ "$" ^ name in
  match t.func with
  | Udf u -> invalid_arg ("Aggregate.decompose: UDF " ^ u.udf_name)
  | Sum ->
    let ty = result_type t in
    {
      partials = [ { t with out_name = p "s" } ];
      combine = [ make Sum ~arg:(partial_col ~qual (p "s") ty) t.out_name ];
      post = None;
    }
  | Count_star | Count ->
    {
      partials = [ { t with out_name = p "c" } ];
      combine = [ make Sum ~arg:(partial_col ~qual (p "c") Datatype.Int) t.out_name ];
      post = None;
    }
  | Min ->
    let ty = result_type t in
    {
      partials = [ { t with out_name = p "m" } ];
      combine = [ make Min ~arg:(partial_col ~qual (p "m") ty) t.out_name ];
      post = None;
    }
  | Max ->
    let ty = result_type t in
    {
      partials = [ { t with out_name = p "m" } ];
      combine = [ make Max ~arg:(partial_col ~qual (p "m") ty) t.out_name ];
      post = None;
    }
  | Avg ->
    let arg = match t.arg with Some e -> e | None -> assert false in
    let sum_ty = Expr.type_of arg in
    let ps = { func = Sum; arg = Some arg; out_name = p "s" } in
    let pc = { func = Count_star; arg = None; out_name = p "c" } in
    let cs = make Sum ~arg:(partial_col ~qual (p "s") sum_ty) (p "ss") in
    let cc = make Sum ~arg:(partial_col ~qual (p "c") Datatype.Int) (p "cc") in
    {
      partials = [ ps; pc ];
      combine = [ cs; cc ];
      post =
        Some
          ( Expr.Binop
              ( Expr.Div,
                partial_col ~qual (p "ss") sum_ty,
                partial_col ~qual (p "cc") Datatype.Int ),
            t.out_name );
    }

type state =
  | SCount of int
  | SSum of Value.t option
  | SMin of Value.t option
  | SMax of Value.t option
  | SAvg of Value.t option * int
  | SUdf of udf_spec * Value.t list  (* collected argument values, reversed *)

let init = function
  | Count_star | Count -> SCount 0
  | Sum -> SSum None
  | Min -> SMin None
  | Max -> SMax None
  | Avg -> SAvg (None, 0)
  | Udf u -> SUdf (u, [])

let acc f old v = match old with None -> Some v | Some o -> Some (f o v)

let step state v =
  match state, v with
  | SCount n, _ -> SCount (n + 1)
  | SSum s, Some v -> SSum (acc Value.add s v)
  | SMin s, Some v -> SMin (acc Value.min_value s v)
  | SMax s, Some v -> SMax (acc Value.max_value s v)
  | SAvg (s, n), Some v -> SAvg (acc Value.add s v, n + 1)
  | SUdf (u, vs), Some v -> SUdf (u, v :: vs)
  | (SSum _ | SMin _ | SMax _ | SAvg _ | SUdf _), None ->
    invalid_arg "Aggregate.step: missing argument value"

let merge_opt f a b =
  match a, b with
  | None, s | s, None -> s
  | Some x, Some y -> Some (f x y)

let count_state n = SCount n
let sum_state v = SSum (Some v)

let merge a b =
  match a, b with
  | SCount x, SCount y -> SCount (x + y)
  | SSum x, SSum y -> SSum (merge_opt Value.add x y)
  | SMin x, SMin y -> SMin (merge_opt Value.min_value x y)
  | SMax x, SMax y -> SMax (merge_opt Value.max_value x y)
  | SAvg (x, n), SAvg (y, m) -> SAvg (merge_opt Value.add x y, n + m)
  | SUdf (u, xs), SUdf (_, ys) -> SUdf (u, ys @ xs)
  | (SCount _ | SSum _ | SMin _ | SMax _ | SAvg _ | SUdf _), _ ->
    invalid_arg "Aggregate.merge: mismatched states"

let finish = function
  | SCount n -> Value.Int n
  | SSum (Some v) | SMin (Some v) | SMax (Some v) -> v
  | SAvg (Some s, n) when n > 0 -> Value.div s (Value.Int n)
  | SUdf (u, vs) when vs <> [] -> u.udf_fold (List.rev vs)
  | SSum None | SMin None | SMax None | SAvg _ | SUdf _ ->
    invalid_arg "Aggregate.finish: empty group"

let func_name = function
  | Count_star -> "COUNT(*)"
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"
  | Udf u -> u.udf_name

let pp ppf t =
  match t.arg with
  | None -> Format.fprintf ppf "%s AS %s" (func_name t.func) t.out_name
  | Some e ->
    Format.fprintf ppf "%s(%a) AS %s" (func_name t.func) Expr.pp e t.out_name

let to_string t = Format.asprintf "%a" pp t
