exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let backing_prefix = "__mv_"
let cnt_name = "cnt"

type partial = P_sum of Expr.t | P_min of Expr.t | P_max of Expr.t

type view = {
  mv_name : string;
  mv_sql : string;
  mv_def : Block.view;
  mv_backing : string;
  mv_keys : (Schema.column * string) list;
  mv_partials : (partial * string * Datatype.t) list;
  mutable mv_versions : (string * int) list;
  mutable mv_maintain : bool;
}

type counters = {
  mutable attempts : int;
  mutable hits : int;
  mutable cost_rejections : int;
  mutable stale_skips : int;
  mutable deltas : int;
  mutable delta_rows : int;
  mutable refreshes : int;
}

type t = { mutable reg_views : view list; stats : counters }

let create () =
  { reg_views = [];
    stats =
      { attempts = 0; hits = 0; cost_rejections = 0; stale_skips = 0;
        deltas = 0; delta_rows = 0; refreshes = 0 } }

let views t = t.reg_views
let stats t = t.stats

let find t name =
  List.find_opt (fun v -> String.equal v.mv_name name) t.reg_views

let find_exn t name =
  match find t name with
  | Some v -> v
  | None -> err "unknown materialized view %s" name

let base_tables v =
  List.sort_uniq String.compare
    (List.map (fun r -> r.Block.r_table) v.Block.v_rels)

let is_fresh cat mv =
  List.for_all
    (fun (tb, ver) -> Catalog.table_version cat tb = ver)
    mv.mv_versions

let set_maintenance t name on = (find_exn t name).mv_maintain <- on

(* ---- extent planning -------------------------------------------------- *)

let partial_arg = function P_sum e | P_min e | P_max e -> e

let partial_key = function
  | P_sum e -> "s:" ^ Expr.to_string e
  | P_min e -> "m:" ^ Expr.to_string e
  | P_max e -> "x:" ^ Expr.to_string e

(* Partials an aggregate needs beyond the group count.  COUNT of a column
   equals the row count here because the engine does not model NULLs. *)
let needed_partials (a : Aggregate.t) =
  match a.Aggregate.func, a.Aggregate.arg with
  | (Aggregate.Count_star | Aggregate.Count), _ -> []
  | Aggregate.Sum, Some e | Aggregate.Avg, Some e -> [ P_sum e ]
  | Aggregate.Min, Some e -> [ P_min e ]
  | Aggregate.Max, Some e -> [ P_max e ]
  | Aggregate.Udf _, _ | _, None ->
    invalid_arg "Matview: non-decomposable aggregate (binder must reject)"

(* One extent column per distinct partial; s<i>/m<i>/x<i> naming leaves
   the SQL-visible namespace alone. *)
let plan_partials aggs =
  let seen = Hashtbl.create 8 in
  let out = ref [] and ns = ref 0 and nm = ref 0 and nx = ref 0 in
  List.iter
    (fun a ->
      List.iter
        (fun p ->
          let k = partial_key p in
          if not (Hashtbl.mem seen k) then begin
            Hashtbl.add seen k ();
            let name =
              match p with
              | P_sum _ -> incr ns; Printf.sprintf "s%d" (!ns - 1)
              | P_min _ -> incr nm; Printf.sprintf "m%d" (!nm - 1)
              | P_max _ -> incr nx; Printf.sprintf "x%d" (!nx - 1)
            in
            out := (p, name, Expr.type_of (partial_arg p)) :: !out
          end)
        (needed_partials a))
    aggs;
  List.rev !out

let partial_agg (p, name, _) =
  match p with
  | P_sum e -> Aggregate.make Aggregate.Sum ~arg:e name
  | P_min e -> Aggregate.make Aggregate.Min ~arg:e name
  | P_max e -> Aggregate.make Aggregate.Max ~arg:e name

(* The query whose result is the extent: the view's SPJ part grouped by its
   keys, computing the group count and every partial. *)
let extent_query (v : Block.view) keys partials =
  let aggs =
    Aggregate.make Aggregate.Count_star cnt_name :: List.map partial_agg partials
  in
  { Block.q_views = [];
    q_rels = v.Block.v_rels;
    q_preds = v.Block.v_preds;
    q_grouped = true;
    q_keys = v.Block.v_keys;
    q_aggs = aggs;
    q_having = [];
    q_select =
      List.map (fun (c, n) -> Block.Sel_col (c, n)) keys
      @ List.map (fun a -> Block.Sel_agg a) aggs;
    q_order = [];
    q_limit = None }

let run_extent ~options cat q reason =
  let r = Optimizer.optimize ~options cat q in
  let ctx = Exec_ctx.create ~work_mem:options.Optimizer.work_mem cat in
  let rel =
    Fun.protect ~finally:(fun () -> Exec_ctx.cleanup ctx) (fun () ->
        Executor.run ctx r.Optimizer.plan)
  in
  if Relation.is_empty rel then
    err "materialized view %s: defining query selects no rows" reason;
  Relation.tuples rel

let current_versions cat v =
  List.map (fun tb -> (tb, Catalog.table_version cat tb)) (base_tables v)

let create_view ?(options = Optimizer.default_options) cat t ~name ~sql def =
  if find t name <> None then err "materialized view %s already exists" name;
  if Catalog.find_table cat name <> None then
    err "materialized view %s: a table of that name exists" name;
  let backing = backing_prefix ^ name in
  let keys = List.mapi (fun i c -> (c, Printf.sprintf "k%d" i)) def.Block.v_keys in
  let partials = plan_partials def.Block.v_aggs in
  let versions = current_versions cat def in
  let rows = run_extent ~options cat (extent_query def keys partials) name in
  let columns =
    List.map (fun ((c : Schema.column), n) -> (n, c.Schema.cty)) keys
    @ ((cnt_name, Datatype.Int)
       :: List.map (fun (_, n, ty) -> (n, ty)) partials)
  in
  ignore
    (Catalog.add_table cat ~name:backing ~columns ~pk:(List.map snd keys) rows);
  let mv =
    { mv_name = name; mv_sql = sql; mv_def = def; mv_backing = backing;
      mv_keys = keys; mv_partials = partials; mv_versions = versions;
      mv_maintain = true }
  in
  t.reg_views <- t.reg_views @ [ mv ];
  mv

(* Recovery: re-register a view whose backing table was already restored
   from a checkpoint.  The definition is re-derived from the stored SQL
   (parse + bind, done by the caller) instead of being serialized; keys and
   partials are recomputed exactly as [create_view] plans them, so extent
   column names line up with the restored backing table.  The extent itself
   is NOT recomputed. *)
let restore cat t ~name ~sql ~maintain ~versions def =
  if find t name <> None then err "materialized view %s already exists" name;
  let backing = backing_prefix ^ name in
  if Catalog.find_table cat backing = None then
    err "materialized view %s: backing table %s was not restored" name backing;
  let keys = List.mapi (fun i c -> (c, Printf.sprintf "k%d" i)) def.Block.v_keys in
  let partials = plan_partials def.Block.v_aggs in
  let mv =
    { mv_name = name; mv_sql = sql; mv_def = def; mv_backing = backing;
      mv_keys = keys; mv_partials = partials; mv_versions = versions;
      mv_maintain = maintain }
  in
  t.reg_views <- t.reg_views @ [ mv ];
  mv

let drop cat t name =
  let mv = find_exn t name in
  Catalog.drop_table cat mv.mv_backing;
  t.reg_views <- List.filter (fun v -> v != mv) t.reg_views

let refresh ?(options = Optimizer.default_options) cat t name =
  let mv = find_exn t name in
  let versions = current_versions cat mv.mv_def in
  let rows =
    run_extent ~options cat (extent_query mv.mv_def mv.mv_keys mv.mv_partials)
      name
  in
  ignore (Catalog.replace_rows cat mv.mv_backing rows);
  mv.mv_versions <- versions;
  t.stats.refreshes <- t.stats.refreshes + 1

let row_count cat mv = Heap_file.nrows (Catalog.table_exn cat mv.mv_backing).Catalog.heap

(* ---- incremental maintenance ------------------------------------------ *)

let merge_partial p a b =
  match p with
  | P_sum _ -> Value.add a b
  | P_min _ -> Value.min_value a b
  | P_max _ -> Value.max_value a b

(* Fold the inserted base rows into the extent: group the delta exactly as
   the view does, then coalesce delta groups into existing extent rows
   (decomposability: COUNT/SUM add, MIN/MAX take the extremum) and append
   rows for new groups.  [replace_rows] re-sorts, re-analyzes and re-indexes
   the extent and bumps the epoch, so cached plans over the old extent die. *)
let apply_delta cat t mv ~table ~rows =
  let r = List.hd mv.mv_def.Block.v_rels in
  let tbl = Catalog.table_exn cat table in
  let schema = Schema.rename_qualifier tbl.Catalog.tschema r.Block.r_alias in
  let preds = List.map (Expr.compile_pred schema) mv.mv_def.Block.v_preds in
  let key_idxs =
    List.map (fun (c, _) -> Expr.resolve_column schema c) mv.mv_keys
  in
  let evals =
    List.map (fun (p, _, _) -> Expr.compile schema (partial_arg p)) mv.mv_partials
  in
  let groups = Hashtbl.create 16 in
  let nrows = ref 0 in
  List.iter
    (fun row ->
      if List.for_all (fun p -> p row) preds then begin
        incr nrows;
        let k = List.map (Tuple.get row) key_idxs in
        let vals = Array.of_list (List.map (fun f -> f row) evals) in
        match Hashtbl.find_opt groups k with
        | None -> Hashtbl.add groups k (ref 1, vals)
        | Some (c, acc) ->
          incr c;
          List.iteri
            (fun i (p, _, _) -> acc.(i) <- merge_partial p acc.(i) vals.(i))
            mv.mv_partials
      end)
    rows;
  if Hashtbl.length groups > 0 then begin
    let nkeys = List.length mv.mv_keys in
    let btbl = Catalog.table_exn cat mv.mv_backing in
    let existing = Array.of_seq (Heap_file.to_seq btbl.Catalog.heap) in
    let by_key = Hashtbl.create (Array.length existing) in
    Array.iteri
      (fun i row -> Hashtbl.replace by_key (List.init nkeys (Tuple.get row)) i)
      existing;
    let fresh_rows = ref [] in
    Hashtbl.iter
      (fun k (c, vals) ->
        match Hashtbl.find_opt by_key k with
        | Some i ->
          let row = Array.copy existing.(i) in
          row.(nkeys) <- Value.add row.(nkeys) (Value.Int !c);
          List.iteri
            (fun j (p, _, _) ->
              row.(nkeys + 1 + j) <- merge_partial p row.(nkeys + 1 + j) vals.(j))
            mv.mv_partials;
          existing.(i) <- row
        | None ->
          fresh_rows :=
            Array.of_list (k @ (Value.Int !c :: Array.to_list vals))
            :: !fresh_rows)
      groups;
    ignore
      (Catalog.replace_rows cat mv.mv_backing
         (Array.to_list existing @ !fresh_rows));
    t.stats.deltas <- t.stats.deltas + 1;
    t.stats.delta_rows <- t.stats.delta_rows + !nrows
  end

let on_insert cat t ~table ~rows =
  List.iter
    (fun mv ->
      let touches =
        List.exists
          (fun r -> String.equal r.Block.r_table table)
          mv.mv_def.Block.v_rels
      in
      if touches then begin
        let single =
          match mv.mv_def.Block.v_rels with [ _ ] -> true | _ -> false
        in
        (* Absorb only when this insert is the sole unabsorbed change —
           otherwise the extent no longer reflects any consistent base
           state and must be REFRESHed from scratch. *)
        let fresh_but_this =
          List.for_all
            (fun (tb, ver) ->
              let cur = Catalog.table_version cat tb in
              if String.equal tb table then ver + 1 = cur else ver = cur)
            mv.mv_versions
        in
        if single && mv.mv_maintain && fresh_but_this then begin
          apply_delta cat t mv ~table ~rows;
          mv.mv_versions <-
            List.map
              (fun (tb, ver) ->
                if String.equal tb table then (tb, ver + 1) else (tb, ver))
              mv.mv_versions
        end
        (* else: the view is now stale; matching skips it until REFRESH. *)
      end)
    t.reg_views

(* ---- matching and rewrite --------------------------------------------- *)

type rewrite = {
  rw_view : view;
  rw_q : Block.query;  (** re-aggregation query over the extent *)
  rw_project : (Expr.t * Schema.column) list;  (** final output projection *)
  rw_order : (Schema.column * bool) list;
  rw_limit : int option;
}

(* In-order per-table pairing of view aliases with query aliases; self-join
   symmetric matches beyond textual order are not explored. *)
let alias_map v_rels q_rels =
  let tables rels =
    List.sort_uniq String.compare (List.map (fun r -> r.Block.r_table) rels)
  in
  let vt = tables v_rels and qt = tables q_rels in
  if vt <> qt then None
  else begin
    let of_table rels t =
      List.filter_map
        (fun r ->
          if String.equal r.Block.r_table t then Some r.Block.r_alias else None)
        rels
    in
    let rec zip acc = function
      | [] -> Some acc
      | t :: rest ->
        let va = of_table v_rels t and qa = of_table q_rels t in
        if List.length va <> List.length qa then None
        else zip (acc @ List.combine va qa) rest
    in
    zip [] vt
  end

(* [col <cmp> const] range predicates, normalized so the column is on the
   left (flipping the comparison when the literal form has it on the
   right). *)
let flip_cmp = function
  | Expr.Lt -> Expr.Gt
  | Expr.Le -> Expr.Ge
  | Expr.Gt -> Expr.Lt
  | Expr.Ge -> Expr.Le
  | (Expr.Eq | Expr.Ne) as c -> c

let norm_range = function
  | Expr.Cmp (op, Expr.Col c, Expr.Const v) -> Some (op, c, v)
  | Expr.Cmp (op, Expr.Const v, Expr.Col c) -> Some (flip_cmp op, c, v)
  | _ -> None

(* Does the query conjunct [query] imply the (alias-mapped) view predicate
   [view]?  Only single-column ranges against constants are decided: a
   stronger bound on the same column in the same direction (or an equality
   inside the view's half-range) implies the view predicate.  [Ne] view
   predicates are left to textual matching — deciding them needs the
   column's domain. *)
let implies ~view ~query =
  match norm_range view, norm_range query with
  | Some (vo, vc, vk), Some (qo, qc, qk) when Schema.column_equal vc qc -> (
    try
      match vo, qo with
      | Expr.Gt, Expr.Gt -> Expr.eval_cmp Expr.Ge qk vk
      | Expr.Gt, (Expr.Ge | Expr.Eq) -> Expr.eval_cmp Expr.Gt qk vk
      | Expr.Ge, (Expr.Gt | Expr.Ge | Expr.Eq) -> Expr.eval_cmp Expr.Ge qk vk
      | Expr.Lt, Expr.Lt -> Expr.eval_cmp Expr.Le qk vk
      | Expr.Lt, (Expr.Le | Expr.Eq) -> Expr.eval_cmp Expr.Lt qk vk
      | Expr.Le, (Expr.Lt | Expr.Le | Expr.Eq) -> Expr.eval_cmp Expr.Le qk vk
      | _ -> false
    with _ -> false)
  | _ -> false

(* Match each view predicate against the query's conjuncts: a textually
   equal conjunct is consumed (removed — the extent already applied it); a
   strictly stronger conjunct on the same column covers the view predicate
   by implication but STAYS in the residual, to be re-applied over the
   extent.  Leftover conjuncts are residual and must be evaluable on the
   extent's grouping columns. *)
let consume_preds vpreds qpreds =
  let rec remove vp = function
    | [] -> None
    | p :: rest ->
      if String.equal (Expr.pred_to_string p) (Expr.pred_to_string vp) then
        Some rest
      else Option.map (fun r -> p :: r) (remove vp rest)
  in
  List.fold_left
    (fun acc vp ->
      Option.bind acc (fun qs ->
          match remove vp qs with
          | Some rest -> Some rest
          | None ->
            if List.exists (fun qp -> implies ~view:vp ~query:qp) qs then
              Some qs
            else None))
    (Some qpreds) vpreds

(* Column -> expression rewriting ([Expr.subst_columns] only maps columns to
   columns); expands an AVG output reference into its sum/count quotient. *)
let rec subst_exprs f (e : Expr.t) =
  match e with
  | Expr.Col c -> (match f c with Some e' -> e' | None -> e)
  | Expr.Const _ -> e
  | Expr.Binop (op, a, b) -> Expr.Binop (op, subst_exprs f a, subst_exprs f b)

let rec subst_pred_exprs f (p : Expr.pred) =
  match p with
  | Expr.Cmp (c, a, b) -> Expr.Cmp (c, subst_exprs f a, subst_exprs f b)
  | Expr.And (a, b) -> Expr.And (subst_pred_exprs f a, subst_pred_exprs f b)
  | Expr.Or (a, b) -> Expr.Or (subst_pred_exprs f a, subst_pred_exprs f b)
  | Expr.Not a -> Expr.Not (subst_pred_exprs f a)

type derived =
  | D_plain of Aggregate.t
  | D_avg of { ss : Aggregate.t; cc : Aggregate.t }

let match_view mv (q : Block.query) =
  if q.Block.q_views <> [] || not q.Block.q_grouped then None
  else if mv.mv_def.Block.v_having <> [] then None
  else
    match alias_map mv.mv_def.Block.v_rels q.Block.q_rels with
    | None -> None
    | Some amap ->
      let exception No_match in
      (try
         let map_alias a =
           match List.assoc_opt a amap with
           | Some qa -> qa
           | None -> raise No_match
         in
         let to_query_side c =
           Some { c with Schema.cqual = map_alias c.Schema.cqual }
         in
         (* 1. every view predicate appears among the query's conjuncts, or
            is implied by a stronger single-column range conjunct *)
         let vpreds =
           List.map
             (fun p -> Expr.subst_columns to_query_side p)
             mv.mv_def.Block.v_preds
         in
         let residual =
           match consume_preds vpreds q.Block.q_preds with
           | Some r -> r
           | None -> raise No_match
         in
         (* Query-side base column -> extent column, for the view's keys. *)
         let key_subst =
           List.map
             (fun ((kc : Schema.column), ext) ->
               ( (map_alias kc.Schema.cqual, kc.Schema.cname),
                 Schema.column ~qual:mv.mv_name ext kc.Schema.cty ))
             mv.mv_keys
         in
         let subst_key (c : Schema.column) =
           List.assoc_opt (c.Schema.cqual, c.Schema.cname) key_subst
         in
         let subst_key_exn c =
           match subst_key c with Some c' -> c' | None -> raise No_match
         in
         (* 2. residual predicates touch only grouping columns of the view *)
         let residual' =
           List.map
             (fun p ->
               List.iter
                 (fun c -> ignore (subst_key_exn c))
                 (Expr.pred_columns p);
               Expr.subst_columns subst_key p)
             residual
         in
         (* 3. the query's groups coarsen the view's groups *)
         let keys' = List.map subst_key_exn q.Block.q_keys in
         (* 4. every aggregate re-aggregates from a stored partial *)
         let cnt_col = Schema.column ~qual:mv.mv_name cnt_name Datatype.Int in
         let partial_col kind e =
           (* [e] is the query-side argument — already in query aliases; only
              the view's stored partials need mapping before comparison. *)
           let s = Expr.to_string (partial_arg e) in
           match
             List.find_opt
               (fun (p, _, _) ->
                 (match p, e with
                 | P_sum _, P_sum _ | P_min _, P_min _ | P_max _, P_max _ ->
                   true
                 | _ -> false)
                 && String.equal
                      (Expr.to_string
                         (Expr.subst_expr_columns to_query_side
                            (partial_arg p)))
                      s)
               mv.mv_partials
           with
           | Some (_, n, ty) -> Schema.column ~qual:mv.mv_name n ty
           | None -> ignore kind; raise No_match
         in
         let derive (a : Aggregate.t) =
           match a.Aggregate.func, a.Aggregate.arg with
           | (Aggregate.Count_star | Aggregate.Count), _ ->
             D_plain
               (Aggregate.make Aggregate.Sum ~arg:(Expr.Col cnt_col)
                  a.Aggregate.out_name)
           | Aggregate.Sum, Some e ->
             D_plain
               (Aggregate.make Aggregate.Sum
                  ~arg:(Expr.Col (partial_col `S (P_sum e)))
                  a.Aggregate.out_name)
           | Aggregate.Min, Some e ->
             D_plain
               (Aggregate.make Aggregate.Min
                  ~arg:(Expr.Col (partial_col `M (P_min e)))
                  a.Aggregate.out_name)
           | Aggregate.Max, Some e ->
             D_plain
               (Aggregate.make Aggregate.Max
                  ~arg:(Expr.Col (partial_col `X (P_max e)))
                  a.Aggregate.out_name)
           | Aggregate.Avg, Some e ->
             let ss =
               Aggregate.make Aggregate.Sum
                 ~arg:(Expr.Col (partial_col `S (P_sum e)))
                 (a.Aggregate.out_name ^ "$ss")
             in
             let cc =
               Aggregate.make Aggregate.Sum ~arg:(Expr.Col cnt_col)
                 (a.Aggregate.out_name ^ "$cc")
             in
             D_avg { ss; cc }
           | _ -> raise No_match
         in
         let derived = List.map (fun a -> (a, derive a)) q.Block.q_aggs in
         let aggs' =
           List.concat_map
             (fun (_, d) ->
               match d with
               | D_plain a -> [ a ]
               | D_avg { ss; cc } -> [ ss; cc ])
             derived
         in
         let avg_parts =
           List.filter_map
             (fun ((a : Aggregate.t), d) ->
               match d with
               | D_avg { ss; cc } -> Some (a.Aggregate.out_name, (ss, cc))
               | D_plain _ -> None)
             derived
         in
         (* Names present in the re-aggregation output, including the $ss/$cc
            partial pairs an AVG splits into. *)
         let derived_outs =
           List.map (fun (a : Aggregate.t) -> a.Aggregate.out_name) aggs'
         in
         (* 5. HAVING passes through on unchanged aggregate names; an AVG
            reference is first expanded into its sum/count quotient, which
            [Value.div] evaluates exactly as [Aggregate.Avg]'s finish does. *)
         let having' =
           let quotient ((ss : Aggregate.t), (cc : Aggregate.t)) =
             Expr.Binop
               ( Expr.Div,
                 Expr.col ss.Aggregate.out_name (Aggregate.result_type ss),
                 Expr.col cc.Aggregate.out_name (Aggregate.result_type cc) )
           in
           List.map
             (fun p ->
               let p =
                 subst_pred_exprs
                   (fun c ->
                     Option.map quotient
                       (List.assoc_opt c.Schema.cname avg_parts))
                   p
               in
               Expr.subst_columns
                 (fun c ->
                   if List.mem c.Schema.cname derived_outs then None
                   else Some (subst_key_exn c))
                 p)
             q.Block.q_having
         in
         (* 6. select list and final projection *)
         let derived_of out =
           snd
             (List.find
                (fun ((a : Aggregate.t), _) ->
                  String.equal a.Aggregate.out_name out)
                derived)
         in
         let select' =
           List.concat_map
             (function
               | Block.Sel_col (c, n) -> [ Block.Sel_col (subst_key_exn c, n) ]
               | Block.Sel_agg a -> (
                 match derived_of a.Aggregate.out_name with
                 | D_plain a' -> [ Block.Sel_agg a' ]
                 | D_avg { ss; cc } -> [ Block.Sel_agg ss; Block.Sel_agg cc ]))
             q.Block.q_select
         in
         let project =
           List.map
             (function
               | Block.Sel_col ((c : Schema.column), n) ->
                 let out = Schema.column n c.Schema.cty in
                 (Expr.Col out, out)
               | Block.Sel_agg a -> (
                 let out_name = a.Aggregate.out_name in
                 match derived_of out_name with
                 | D_plain a' ->
                   let ty = Aggregate.result_type a' in
                   let out = Schema.column out_name ty in
                   (Expr.Col out, out)
                 | D_avg { ss; cc } ->
                   let c n ty = Expr.col n ty in
                   ( Expr.Binop
                       ( Expr.Div,
                         c ss.Aggregate.out_name (Aggregate.result_type ss),
                         c cc.Aggregate.out_name (Aggregate.result_type cc) ),
                     Schema.column out_name Datatype.Float )))
             q.Block.q_select
         in
         let order =
           List.map
             (fun (n, desc) ->
               match
                 List.find_opt
                   (fun (_, (c : Schema.column)) ->
                     String.equal c.Schema.cname n)
                   project
               with
               | Some (_, c) -> (c, desc)
               | None -> raise No_match)
             q.Block.q_order
         in
         Some
           { rw_view = mv;
             rw_q =
               { Block.q_views = [];
                 q_rels =
                   [ { Block.r_alias = mv.mv_name; r_table = mv.mv_backing } ];
                 q_preds = residual';
                 q_grouped = true;
                 q_keys = keys';
                 q_aggs = aggs';
                 q_having = having';
                 q_select = select';
                 q_order = [];
                 q_limit = None };
             rw_project = project;
             rw_order = order;
             rw_limit = q.Block.q_limit }
       with No_match -> None)

(* Optimize the re-aggregation query, then restore the original output
   shape: projection in the query's select order (AVG recomposed as
   sum/count), ORDER BY, LIMIT. *)
let plan_rewrite ~options cat rw =
  let inner = Optimizer.optimize ~options cat rw.rw_q in
  let plan =
    Physical.Project { input = inner.Optimizer.plan; cols = rw.rw_project }
  in
  let plan =
    match rw.rw_order with
    | [] -> plan
    | order ->
      Physical.Sort
        { input = plan; cols = List.map fst order; desc = List.map snd order }
  in
  let plan =
    match rw.rw_limit with
    | None -> plan
    | Some count -> Physical.Limit { input = plan; count }
  in
  let est = Cost_model.estimate cat ~work_mem:options.Optimizer.work_mem plan in
  { inner with Optimizer.plan; est }

type decision =
  | No_views
  | No_match
  | Stale of string list
  | Chosen of { view : string; base_cost : float; view_cost : float }
  | Rejected_cost of { view : string; base_cost : float; view_cost : float }
  | From_cache of string option

let decision_to_string = function
  | No_views -> "no views"
  | No_match -> "no matching view"
  | Stale vs -> Printf.sprintf "stale: %s" (String.concat ", " vs)
  | Chosen { view; base_cost; view_cost } ->
    Printf.sprintf "view %s (cost %.1f vs base %.1f)" view view_cost base_cost
  | Rejected_cost { view; base_cost; view_cost } ->
    Printf.sprintf "view %s rejected (cost %.1f vs base %.1f)" view view_cost
      base_cost
  | From_cache None -> "cached base plan"
  | From_cache (Some v) -> Printf.sprintf "cached view plan (%s)" v

let rewritten_view = function
  | Chosen { view; _ } -> Some view
  | From_cache v -> v
  | No_views | No_match | Stale _ | Rejected_cost _ -> None

let rewrites ?(options = Optimizer.default_options) cat t q =
  List.filter_map
    (fun mv ->
      match match_view mv q with
      | Some rw when is_fresh cat mv ->
        Some (mv.mv_name, plan_rewrite ~options cat rw)
      | _ -> None)
    t.reg_views

let optimize ?(options = Optimizer.default_options) cat t q =
  let base = Optimizer.optimize ~options cat q in
  if t.reg_views = [] then (base, No_views)
  else begin
    t.stats.attempts <- t.stats.attempts + 1;
    let matched =
      List.filter_map
        (fun mv -> Option.map (fun rw -> (mv, rw)) (match_view mv q))
        t.reg_views
    in
    let fresh, stale = List.partition (fun (mv, _) -> is_fresh cat mv) matched in
    match fresh with
    | [] ->
      if matched = [] then (base, No_match)
      else begin
        t.stats.stale_skips <- t.stats.stale_skips + 1;
        (base, Stale (List.map (fun (mv, _) -> mv.mv_name) stale))
      end
    | _ ->
      let best =
        List.fold_left
          (fun acc (mv, rw) ->
            let r = plan_rewrite ~options cat rw in
            match acc with
            | Some (_, br)
              when br.Optimizer.est.Cost_model.cost
                   <= r.Optimizer.est.Cost_model.cost ->
              acc
            | _ -> Some (mv, r))
          None fresh
      in
      let mv, r = Option.get best in
      let base_cost = base.Optimizer.est.Cost_model.cost in
      let view_cost = r.Optimizer.est.Cost_model.cost in
      if view_cost < base_cost then begin
        t.stats.hits <- t.stats.hits + 1;
        ( { r with
            Optimizer.time_ms = base.Optimizer.time_ms +. r.Optimizer.time_ms },
          Chosen { view = mv.mv_name; base_cost; view_cost } )
      end
      else begin
        t.stats.cost_rejections <- t.stats.cost_rejections + 1;
        (base, Rejected_cost { view = mv.mv_name; base_cost; view_cost })
      end
  end
