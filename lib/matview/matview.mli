(** Materialized aggregate views: extent storage, view-matching rewrite and
    incremental maintenance.

    A view is a single-block aggregate query (GROUP BY required, all
    aggregates decomposable).  Its extent is stored as a regular heap table
    [__mv_<name>] holding the grouping columns, the group count and one
    column per distinct partial aggregate (SUM/MIN/MAX argument); AVG is
    recorded as SUM + the count.  A query is answered from the extent when

    - its FROM matches the view's relations (per-table, in textual order),
    - the view's predicates all appear among the query's conjuncts and the
      residual conjuncts touch only the view's grouping columns,
    - its grouping columns are a subset of the view's (the view's groups
      refine the query's), and
    - every aggregate re-aggregates from a stored partial (COUNT → SUM of
      the count; SUM/MIN/MAX over the matching partial; AVG recomposed as
      SUM(sum)/SUM(count) in a final projection).

    The rewritten plan competes with the base plan on estimated page IO;
    the cheaper one wins.  Appends to a view's single base table are folded
    into the extent incrementally; any unabsorbed base change leaves the
    view stale, and stale views are never used to answer queries (REFRESH
    recomputes the extent from scratch). *)

exception Error of string

val backing_prefix : string
(** ["__mv_"] — extent tables are named [__mv_<view name>]. *)

type partial = P_sum of Expr.t | P_min of Expr.t | P_max of Expr.t

type view = {
  mv_name : string;
  mv_sql : string;  (** original definition text, for [\dm] *)
  mv_def : Block.view;
  mv_backing : string;
  mv_keys : (Schema.column * string) list;
      (** (underlying grouping column, extent column name) *)
  mv_partials : (partial * string * Datatype.t) list;
  mutable mv_versions : (string * int) list;
      (** absorbed {!Catalog.table_version} per base table *)
  mutable mv_maintain : bool;  (** fold appends in incrementally? *)
}

type counters = {
  mutable attempts : int;  (** optimizations with at least one view *)
  mutable hits : int;  (** rewrites chosen by cost *)
  mutable cost_rejections : int;  (** matched but base plan was cheaper *)
  mutable stale_skips : int;  (** matched but every candidate was stale *)
  mutable deltas : int;  (** incremental maintenance batches applied *)
  mutable delta_rows : int;  (** base rows folded in by those batches *)
  mutable refreshes : int;
}

type t
(** Registry of live views (owned by the session service, which serializes
    access under its statement lock). *)

val create : unit -> t
val views : t -> view list
val find : t -> string -> view option
val stats : t -> counters

val create_view :
  ?options:Optimizer.options ->
  Catalog.t -> t -> name:string -> sql:string -> Block.view -> view
(** Evaluate the defining query and store the extent as a catalog table
    (primary key = grouping columns).  @raise Error on a duplicate name or
    when the defining query selects no rows. *)

val restore :
  Catalog.t ->
  t ->
  name:string ->
  sql:string ->
  maintain:bool ->
  versions:(string * int) list ->
  Block.view ->
  view
(** Re-register a view from a durable checkpoint without recomputing its
    extent.  The backing table [__mv_<name>] must already be restored; the
    bound definition is re-derived by the caller from the stored SQL.
    @raise Error on a duplicate name or a missing backing table. *)

val drop : Catalog.t -> t -> string -> unit
(** Drop the extent table and forget the view.  @raise Error if unknown. *)

val refresh : ?options:Optimizer.options -> Catalog.t -> t -> string -> unit
(** Recompute the extent from scratch and mark the view fresh.
    @raise Error if unknown or the defining query now selects no rows. *)

val set_maintenance : t -> string -> bool -> unit
(** Toggle incremental maintenance for one view (default on).  With it off,
    appends to base tables leave the view stale until REFRESH. *)

val is_fresh : Catalog.t -> view -> bool
(** Have all base-table versions been absorbed? *)

val row_count : Catalog.t -> view -> int
(** Rows in the extent (groups of the view). *)

val on_insert : Catalog.t -> t -> table:string -> rows:Tuple.t list -> unit
(** Notify the registry of rows just appended to [table] (full stored
    width, as returned by {!Catalog.insert}).  Views over that single table
    that are otherwise fresh and have maintenance on absorb the delta;
    every other affected view silently becomes stale. *)

type rewrite = {
  rw_view : view;
  rw_q : Block.query;  (** re-aggregation query over the extent *)
  rw_project : (Expr.t * Schema.column) list;  (** final output projection *)
  rw_order : (Schema.column * bool) list;
  rw_limit : int option;
}

val match_view : view -> Block.query -> rewrite option
(** Structural matching only — freshness and cost are the caller's
    concern. *)

type decision =
  | No_views
  | No_match
  | Stale of string list  (** matched views, all stale *)
  | Chosen of { view : string; base_cost : float; view_cost : float }
  | Rejected_cost of { view : string; base_cost : float; view_cost : float }
  | From_cache of string option
      (** plan served from the plan cache; the view it was built from, if
          any (recorded by the service, not produced by {!optimize}) *)

val decision_to_string : decision -> string

val rewritten_view : decision -> string option
(** The view the returned plan reads from, if any. *)

val optimize :
  ?options:Optimizer.options ->
  Catalog.t -> t -> Block.query -> Optimizer.result * decision
(** Cost-based choice between the base plan and the cheapest fresh matching
    view rewrite. *)

val rewrites :
  ?options:Optimizer.options ->
  Catalog.t -> t -> Block.query -> (string * Optimizer.result) list
(** All fresh matching rewrites with their plans, regardless of cost —
    differential tests use this to force the view path. *)
